#include "fault/fault_schedule.h"

#include <algorithm>

#include "util/check.h"
#include "util/rng.h"

namespace webwave {
namespace {

// Distinct odd salts keep the per-(window, node) outage draws, the
// per-window subtree pick and the per-window burst draw in disjoint
// counter ranges of the one SplitMix64 finalizer.
constexpr std::uint64_t kWindowSalt = 0x9e3779b97f4a7c15ULL;
constexpr std::uint64_t kNodeSalt = 0xd1342543de82ef95ULL;
constexpr std::uint64_t kSubtreeSalt = 0x2545f4914f6cdd1dULL;
constexpr std::uint64_t kBurstSalt = 0x94d049bb133111ebULL;

double OutageDraw(std::uint64_t seed, int window, NodeId v) {
  return CounterUnitDouble(seed +
                           kWindowSalt * (static_cast<std::uint64_t>(window) + 1) +
                           kNodeSalt * (static_cast<std::uint64_t>(v) + 1));
}

std::uint64_t WindowHash(std::uint64_t seed, int window, std::uint64_t salt) {
  std::uint64_t state =
      seed + salt + kWindowSalt * (static_cast<std::uint64_t>(window) + 1);
  return SplitMix64(state);
}

}  // namespace

const char* FaultPatternName(FaultPattern pattern) {
  switch (pattern) {
    case FaultPattern::kSingleNodes:
      return "single_nodes";
    case FaultPattern::kLeafCohort:
      return "leaf_cohort";
    case FaultPattern::kSubtreeOutage:
      return "subtree_outage";
  }
  return "unknown";
}

FaultSchedule::FaultSchedule(const RoutingTree& tree,
                             FaultScheduleOptions options)
    : tree_(tree), options_(options) {
  WEBWAVE_REQUIRE(options_.crash_fraction >= 0 && options_.crash_fraction <= 1,
                  "crash_fraction must be in [0, 1]");
  WEBWAVE_REQUIRE(options_.outage_epochs >= 1, "outage_epochs must be >= 1");
  WEBWAVE_REQUIRE(options_.start_epoch >= 0, "start_epoch must be >= 0");
  WEBWAVE_REQUIRE(tree.size() >= 2, "a one-node tree has nothing to crash");

  switch (options_.pattern) {
    case FaultPattern::kSingleNodes:
      for (NodeId v = 0; v < tree.size(); ++v)
        if (!tree.is_root(v)) candidates_.push_back(v);
      break;
    case FaultPattern::kLeafCohort:
      for (NodeId v = 0; v < tree.size(); ++v)
        if (!tree.is_root(v) && tree.is_leaf(v)) candidates_.push_back(v);
      break;
    case FaultPattern::kSubtreeOutage: {
      // Subtrees holding at most max_subtree_fraction of the tree, never
      // the root's own.  Prefer real subtrees (>= 2 nodes) when the cap
      // admits any, so small trees still exercise multi-node outages.
      const int cap = std::max(
          1, static_cast<int>(options_.max_subtree_fraction * tree.size()));
      for (NodeId v = 0; v < tree.size(); ++v)
        if (!tree.is_root(v) && tree.subtree_size(v) <= cap)
          candidates_.push_back(v);
      std::vector<NodeId> multi;
      for (const NodeId v : candidates_)
        if (tree.subtree_size(v) >= 2) multi.push_back(v);
      if (!multi.empty()) candidates_ = std::move(multi);
      break;
    }
  }
  WEBWAVE_REQUIRE(!candidates_.empty(),
                  "fault pattern has no candidate nodes on this tree");
  down_ = DownSet(epoch_);
}

int FaultSchedule::WindowOf(int epoch) const {
  if (epoch < options_.start_epoch) return -1;
  return (epoch - options_.start_epoch) / options_.outage_epochs;
}

NodeId FaultSchedule::OutageRootAt(int window) const {
  const std::uint64_t h = WindowHash(options_.seed, window, kSubtreeSalt);
  return candidates_[static_cast<std::size_t>(h % candidates_.size())];
}

bool FaultSchedule::DownAt(int epoch, NodeId v) const {
  WEBWAVE_REQUIRE(v >= 0 && v < tree_.size(), "node out of range");
  if (tree_.is_root(v)) return false;  // the home is the authoritative origin
  const int window = WindowOf(epoch);
  if (window < 0) return false;
  switch (options_.pattern) {
    case FaultPattern::kSingleNodes:
      return OutageDraw(options_.seed, window, v) < options_.crash_fraction;
    case FaultPattern::kLeafCohort:
      return tree_.is_leaf(v) &&
             OutageDraw(options_.seed, window, v) < options_.crash_fraction;
    case FaultPattern::kSubtreeOutage:
      return tree_.is_ancestor(OutageRootAt(window), v);
  }
  return false;
}

std::vector<NodeId> FaultSchedule::DownSet(int epoch) const {
  std::vector<NodeId> down;
  if (WindowOf(epoch) < 0) return down;
  for (NodeId v = 0; v < tree_.size(); ++v)
    if (DownAt(epoch, v)) down.push_back(v);
  return down;
}

std::vector<FaultEvent> FaultSchedule::NextEvents() {
  ++epoch_;
  std::vector<NodeId> now = DownSet(epoch_);
  std::vector<FaultEvent> events;
  // Ascending merge of the previous and new down sets (both ascending):
  // a node only in `now` crashed, one only in `down_` recovered.
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < down_.size() || j < now.size()) {
    if (j == now.size() || (i < down_.size() && down_[i] < now[j])) {
      events.push_back({FaultKind::kRecover, down_[i++]});
    } else if (i == down_.size() || now[j] < down_[i]) {
      events.push_back({FaultKind::kCrash, now[j++]});
    } else {
      ++i;
      ++j;
    }
  }
  down_ = std::move(now);
  return events;
}

LinkFault FaultSchedule::LinkAt(int epoch) const {
  LinkFault fault;
  if (options_.burst_probability <= 0) return fault;
  const int window = WindowOf(epoch);
  if (window < 0) return fault;
  const std::uint64_t counter =
      options_.seed + kBurstSalt +
      kWindowSalt * (static_cast<std::uint64_t>(window) + 1);
  if (CounterUnitDouble(counter) < options_.burst_probability) {
    fault.gossip_loss = options_.burst_gossip_loss;
    fault.extra_latency_ms = options_.burst_extra_latency_ms;
  }
  return fault;
}

}  // namespace webwave
