#include "obs/metric_registry.h"

#include "util/check.h"

namespace webwave {

MetricRegistry::Id MetricRegistry::Register(const std::string& name,
                                            Kind kind) {
  const auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    WEBWAVE_REQUIRE(kinds_[Index(it->second)] == kind,
                    "metric re-registered under a different kind");
    return it->second;
  }
  const Id id = static_cast<Id>(names_.size());
  names_.push_back(name);
  kinds_.push_back(kind);
  values_.push_back(0);
  by_name_.emplace(name, id);
  return id;
}

void MetricRegistry::Fold(Shard* shard) {
  WEBWAVE_REQUIRE(shard->deltas.size() <= values_.size(),
                  "shard is larger than the registry it was made from");
  for (std::size_t i = 0; i < shard->deltas.size(); ++i) {
    values_[i] += shard->deltas[i];
    shard->deltas[i] = 0;
  }
}

}  // namespace webwave
