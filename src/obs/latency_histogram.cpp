#include "obs/latency_histogram.h"

#include <limits>

#include "util/check.h"

namespace webwave {

namespace {

// Position of the highest set bit (value > 0).
inline int HighBit(std::uint64_t v) {
  int h = 0;
  while (v >>= 1) ++h;
  return h;
}

}  // namespace

int LatencyHistogram::BucketOf(std::uint64_t value) {
  if (value < static_cast<std::uint64_t>(kSubBuckets)) {
    return static_cast<int>(value);
  }
  const int h = HighBit(value);  // h >= kSubBucketBits
  const int octave = h - kSubBucketBits + 1;
  const int sub = static_cast<int>((value >> (h - kSubBucketBits)) &
                                   (kSubBuckets - 1));
  return octave * kSubBuckets + sub;
}

std::uint64_t LatencyHistogram::BucketLo(int b) {
  WEBWAVE_REQUIRE(b >= 0 && b < kBucketCount, "histogram bucket out of range");
  if (b < kSubBuckets) return static_cast<std::uint64_t>(b);
  const int octave = b / kSubBuckets;  // >= 1
  const int sub = b % kSubBuckets;
  return static_cast<std::uint64_t>(kSubBuckets + sub) << (octave - 1);
}

std::uint64_t LatencyHistogram::BucketHi(int b) {
  if (b + 1 >= kBucketCount) return std::numeric_limits<std::uint64_t>::max();
  return BucketLo(b + 1);
}

LatencyHistogram::LatencyHistogram()
    : counts_(static_cast<std::size_t>(kBucketCount), 0) {}

void LatencyHistogram::Record(std::uint64_t value) {
  counts_[static_cast<std::size_t>(BucketOf(value))] += 1;
  sum_ += value;
  count_ += 1;
}

void LatencyHistogram::Shard::Record(std::uint64_t value) {
  counts[static_cast<std::size_t>(BucketOf(value))] += 1;
  sum += value;
}

LatencyHistogram::Shard LatencyHistogram::MakeShard() const {
  Shard s;
  s.counts.assign(static_cast<std::size_t>(kBucketCount), 0);
  return s;
}

void LatencyHistogram::Fold(Shard* shard) {
  WEBWAVE_REQUIRE(shard->counts.size() == counts_.size(),
                  "histogram shard size mismatch");
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    counts_[b] += shard->counts[b];
    count_ += shard->counts[b];
    shard->counts[b] = 0;
  }
  sum_ += shard->sum;
  shard->sum = 0;
}

void LatencyHistogram::FoldAll(std::vector<Shard>* shards) {
  for (Shard& s : *shards) Fold(&s);
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    counts_[b] += other.counts_[b];
  }
  sum_ += other.sum_;
  count_ += other.count_;
}

std::uint64_t LatencyHistogram::ValueAtQuantile(double q) const {
  if (count_ == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  // Rank is ceil(q * count), clamped to [1, count]; integer arithmetic on
  // the cumulative counts from there on.
  std::uint64_t rank =
      static_cast<std::uint64_t>(q * static_cast<double>(count_));
  if (rank < 1) rank = 1;
  if (rank > count_) rank = count_;
  std::uint64_t cum = 0;
  for (int b = 0; b < kBucketCount; ++b) {
    cum += counts_[static_cast<std::size_t>(b)];
    if (cum >= rank) return BucketLo(b);
  }
  return BucketLo(kBucketCount - 1);
}

std::uint64_t LatencyHistogram::MaxValueBound() const {
  for (int b = kBucketCount - 1; b >= 0; --b) {
    if (counts_[static_cast<std::size_t>(b)] != 0) return BucketHi(b);
  }
  return 0;
}

std::vector<LatencyHistogram::SparseEntry> LatencyHistogram::ToSparse() const {
  std::vector<SparseEntry> out;
  for (int b = 0; b < kBucketCount; ++b) {
    const std::uint64_t c = counts_[static_cast<std::size_t>(b)];
    if (c != 0) out.push_back(SparseEntry{static_cast<std::uint32_t>(b), c});
  }
  return out;
}

LatencyHistogram LatencyHistogram::FromSparse(
    const std::vector<SparseEntry>& entries, std::uint64_t sum) {
  LatencyHistogram h;
  std::int64_t prev = -1;
  for (const SparseEntry& e : entries) {
    WEBWAVE_REQUIRE(static_cast<std::int64_t>(e.index) > prev,
                    "histogram sparse entries must ascend strictly");
    WEBWAVE_REQUIRE(e.index < static_cast<std::uint32_t>(kBucketCount),
                    "histogram sparse index out of range");
    WEBWAVE_REQUIRE(e.count != 0, "histogram sparse entry with zero count");
    prev = static_cast<std::int64_t>(e.index);
    h.counts_[e.index] = e.count;
    h.count_ += e.count;
  }
  h.sum_ = sum;
  return h;
}

HistogramRegistry::Id HistogramRegistry::Register(const std::string& name) {
  auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;
  const Id id = static_cast<Id>(hists_.size());
  ids_.emplace(name, id);
  names_.push_back(name);
  hists_.emplace_back();
  return id;
}

}  // namespace webwave
