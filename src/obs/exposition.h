// Prometheus-style text exposition.
//
// The fleet stats scraper needs an output format an operator (or a real
// Prometheus) can read: `# TYPE` headers and `name{label="v"} value`
// sample lines.  PrometheusWriter collects samples in insertion order,
// groups them per metric name, sanitizes names to the Prometheus charset
// and escapes label values; counters registered through a MetricRegistry
// get the conventional `_total` suffix.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/latency_histogram.h"
#include "obs/metric_registry.h"

namespace webwave {

class PrometheusWriter {
 public:
  using Labels = std::vector<std::pair<std::string, std::string>>;

  void AddCounter(const std::string& name, const Labels& labels,
                  std::uint64_t value) {
    AddSample(name, "counter", labels, std::to_string(value));
  }
  void AddGauge(const std::string& name, const Labels& labels, double value);

  // Real `# TYPE <name> histogram` exposition: cumulative `_bucket`
  // lines with `le` set to each non-empty bucket's exclusive upper
  // bound, the `le="+Inf"` line, then `_sum` and `_count`.  Values are
  // whatever unit the histogram recorded (nanoseconds by convention —
  // name the metric accordingly, e.g. "..._ns").  Multiple calls with
  // the same name (different labels) group under one header.
  void AddHistogram(const std::string& name, const Labels& labels,
                    const LatencyHistogram& hist);

  // Dumps every metric in the registry under the given labels.
  void AddRegistry(const MetricRegistry& registry, const Labels& labels);

  std::string Render() const;
  bool WriteFile(const std::string& path) const;

  // Maps an internal metric name ("serve.hop_sum") onto the Prometheus
  // charset [a-zA-Z0-9_:] ("serve_hop_sum").
  static std::string SanitizeName(const std::string& name);

 private:
  struct Sample {
    std::string name;  // sanitized
    std::string type;  // "counter" | "gauge"
    Labels labels;
    std::string value;
  };
  // A fully rendered histogram family body (the _bucket/_sum/_count
  // lines of one AddHistogram call); blocks sharing a name render under
  // one `# TYPE <name> histogram` header.
  struct HistBlock {
    std::string name;  // sanitized base name
    std::string body;
  };

  void AddSample(const std::string& name, const char* type,
                 const Labels& labels, std::string value);

  std::vector<Sample> samples_;
  std::vector<HistBlock> hist_blocks_;
};

}  // namespace webwave
