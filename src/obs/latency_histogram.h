// The timing half of the observability plane: a mergeable log-linear
// (HDR-style) histogram of u64 values (nanoseconds by convention).
//
// Bucket law.  Values below kSubBuckets (16) land in unit-width buckets
// (index == value).  Above that, each power-of-two octave [2^h, 2^(h+1))
// is split into kSubBuckets equal-width sub-buckets, so relative error is
// bounded by 1/kSubBuckets everywhere.  With h in [4, 63] that is
// 16 + 60*16 = 976 buckets total, fixed at compile time — two histograms
// always share the same bucket boundaries, which is what makes Merge a
// plain per-bucket integer add and the serialized form exact.
//
// Concurrency follows MetricRegistry's shard/fold discipline verbatim:
// each worker records into its own Shard (no atomics, no locks), the
// owner folds shards back in shard-index order, and the fold zeroes the
// shard so folding twice is a no-op.  All state is u64 counts plus a u64
// sum of recorded values, so fold totals are bit-identical at any thread
// count.  Recording never reads a clock — callers measure durations
// through an injectable MonotonicClock (or a FakeClock in tests) and
// hand the histogram a plain integer.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace webwave {

class LatencyHistogram {
 public:
  static constexpr int kSubBucketBits = 4;
  static constexpr int kSubBuckets = 1 << kSubBucketBits;  // 16
  // Linear region [0, 16) plus 60 octaves (h = 4..63) of 16 sub-buckets.
  static constexpr int kBucketCount = kSubBuckets + (64 - kSubBucketBits) * kSubBuckets;  // 976

  // Bucket index for a value; total over all u64 values, never clamps.
  static int BucketOf(std::uint64_t value);
  // Inclusive lower bound of bucket b.
  static std::uint64_t BucketLo(int b);
  // Exclusive upper bound of bucket b (saturates to UINT64_MAX for the
  // last bucket).
  static std::uint64_t BucketHi(int b);

  LatencyHistogram();

  // Single-owner recording (the fast path for single-threaded producers).
  void Record(std::uint64_t value);

  // -- Shard/fold protocol, mirroring MetricRegistry ---------------------
  struct Shard {
    std::vector<std::uint64_t> counts;  // size kBucketCount
    std::uint64_t sum = 0;
    void Record(std::uint64_t value);
  };
  Shard MakeShard() const;
  // Adds the shard's counts and sum into this histogram and zeroes the
  // shard, so a double fold is a no-op.
  void Fold(Shard* shard);
  // Folds every shard in index order.  Addition is commutative over u64,
  // so totals are bit-identical at any shard count.
  void FoldAll(std::vector<Shard>* shards);

  // Per-bucket integer add of `other` into this histogram.
  void Merge(const LatencyHistogram& other);

  // -- Reads -------------------------------------------------------------
  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t bucket(int b) const { return counts_[static_cast<std::size_t>(b)]; }
  bool operator==(const LatencyHistogram& o) const {
    return counts_ == o.counts_ && sum_ == o.sum_ && count_ == o.count_;
  }
  bool operator!=(const LatencyHistogram& o) const { return !(*this == o); }

  // Lower bound of the bucket holding quantile q (0 <= q <= 1) by
  // cumulative count; 0 on an empty histogram.  q = 1 returns the lower
  // bound of the highest non-empty bucket (the recorded max, rounded down
  // to its bucket).
  std::uint64_t ValueAtQuantile(double q) const;
  std::uint64_t MaxValueBound() const;  // exclusive hi of highest non-empty bucket

  // -- Exact serialization ----------------------------------------------
  // Sparse form: (bucket index, count) pairs in strictly ascending index
  // order, plus the sum.  Round-trips bit-exactly; this is also the wire
  // v4 kStatsReply histogram section's payload.
  struct SparseEntry {
    std::uint32_t index;
    std::uint64_t count;
    bool operator==(const SparseEntry& o) const {
      return index == o.index && count == o.count;
    }
  };
  std::vector<SparseEntry> ToSparse() const;
  // Rebuild from a sparse form.  Indices must be strictly ascending and
  // < kBucketCount; counts must be non-zero.  Throws via WEBWAVE_REQUIRE
  // on violation.
  static LatencyHistogram FromSparse(const std::vector<SparseEntry>& entries,
                                     std::uint64_t sum);

 private:
  std::vector<std::uint64_t> counts_;  // dense, size kBucketCount
  std::uint64_t sum_ = 0;
  std::uint64_t count_ = 0;
};

// Named histogram registry, the timing-side sibling of MetricRegistry:
// producers register histograms by stable name and record through the
// returned id; consumers walk the set for wire shipping or Prometheus
// exposition.  Registration is idempotent.
class HistogramRegistry {
 public:
  using Id = std::uint32_t;

  Id Register(const std::string& name);
  std::size_t size() const { return hists_.size(); }
  LatencyHistogram& At(Id id) { return hists_[id]; }
  const LatencyHistogram& At(Id id) const { return hists_[id]; }
  const std::string& NameOf(Id id) const { return names_[id]; }

 private:
  std::unordered_map<std::string, Id> ids_;
  std::vector<std::string> names_;
  std::vector<LatencyHistogram> hists_;
};

}  // namespace webwave
