#include "obs/exposition.h"

#include <cmath>
#include <cstdio>

namespace webwave {
namespace {

std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string RenderNumber(double value) {
  if (!std::isfinite(value)) return value > 0 ? "+Inf" : "-Inf";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

// Renders `{k="v",...}` with an optional trailing le label; empty string
// when there is nothing to render.
std::string RenderLabelSet(const PrometheusWriter::Labels& labels,
                           const char* le_value) {
  if (labels.empty() && le_value == nullptr) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& kv : labels) {
    if (!first) out += ',';
    first = false;
    out += PrometheusWriter::SanitizeName(kv.first) + "=\"" +
           EscapeLabelValue(kv.second) + "\"";
  }
  if (le_value != nullptr) {
    if (!first) out += ',';
    out += std::string("le=\"") + le_value + "\"";
  }
  out += '}';
  return out;
}

}  // namespace

void PrometheusWriter::AddGauge(const std::string& name, const Labels& labels,
                                double value) {
  AddSample(name, "gauge", labels, RenderNumber(value));
}

void PrometheusWriter::AddHistogram(const std::string& name,
                                    const Labels& labels,
                                    const LatencyHistogram& hist) {
  HistBlock blk;
  blk.name = SanitizeName(name);
  std::string body;
  std::uint64_t cum = 0;
  for (const LatencyHistogram::SparseEntry& e : hist.ToSparse()) {
    cum += e.count;
    const std::string le =
        std::to_string(LatencyHistogram::BucketHi(static_cast<int>(e.index)));
    body += blk.name + "_bucket" + RenderLabelSet(labels, le.c_str()) + ' ' +
            std::to_string(cum) + '\n';
  }
  body += blk.name + "_bucket" + RenderLabelSet(labels, "+Inf") + ' ' +
          std::to_string(hist.count()) + '\n';
  body += blk.name + "_sum" + RenderLabelSet(labels, nullptr) + ' ' +
          std::to_string(hist.sum()) + '\n';
  body += blk.name + "_count" + RenderLabelSet(labels, nullptr) + ' ' +
          std::to_string(hist.count()) + '\n';
  blk.body = std::move(body);
  hist_blocks_.push_back(std::move(blk));
}

void PrometheusWriter::AddRegistry(const MetricRegistry& registry,
                                   const Labels& labels) {
  for (MetricRegistry::Id id = 0;
       id < static_cast<MetricRegistry::Id>(registry.size()); ++id) {
    if (registry.kind(id) == MetricRegistry::Kind::kCounter) {
      AddCounter(registry.name(id) + "_total", labels, registry.counter(id));
    } else {
      AddGauge(registry.name(id), labels,
               static_cast<double>(registry.gauge(id)));
    }
  }
}

std::string PrometheusWriter::SanitizeName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(0, 1, '_');
  return out;
}

void PrometheusWriter::AddSample(const std::string& name, const char* type,
                                 const Labels& labels, std::string value) {
  samples_.push_back(Sample{SanitizeName(name), type, labels,
                            std::move(value)});
}

std::string PrometheusWriter::Render() const {
  // Samples of one metric must be contiguous under a single # TYPE header;
  // group by name in first-appearance order.
  std::string out;
  std::vector<bool> done(samples_.size(), false);
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    if (done[i]) continue;
    out += "# TYPE " + samples_[i].name + " " + samples_[i].type + "\n";
    for (std::size_t j = i; j < samples_.size(); ++j) {
      if (done[j] || samples_[j].name != samples_[i].name) continue;
      done[j] = true;
      out += samples_[j].name;
      if (!samples_[j].labels.empty()) {
        out += '{';
        for (std::size_t l = 0; l < samples_[j].labels.size(); ++l) {
          if (l > 0) out += ',';
          out += SanitizeName(samples_[j].labels[l].first) + "=\"" +
                 EscapeLabelValue(samples_[j].labels[l].second) + "\"";
        }
        out += '}';
      }
      out += ' ';
      out += samples_[j].value;
      out += '\n';
    }
  }
  // Histogram families after the scalar samples, grouped by base name in
  // first-appearance order — _bucket/_sum/_count sanitize to distinct
  // names, so these render as pre-built blocks under one header.
  std::vector<bool> hist_done(hist_blocks_.size(), false);
  for (std::size_t i = 0; i < hist_blocks_.size(); ++i) {
    if (hist_done[i]) continue;
    out += "# TYPE " + hist_blocks_[i].name + " histogram\n";
    for (std::size_t j = i; j < hist_blocks_.size(); ++j) {
      if (hist_done[j] || hist_blocks_[j].name != hist_blocks_[i].name)
        continue;
      hist_done[j] = true;
      out += hist_blocks_[j].body;
    }
  }
  return out;
}

bool PrometheusWriter::WriteFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string doc = Render();
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace webwave
