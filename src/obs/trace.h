// Deterministic sampled request tracing.
//
// A trace answers "what happened to request N": where it arrived, every
// up-tree hop, each admission decision (token-bucket grant or Poisson
// thinning draw), failover attempts with their backoff slots, and the
// final disposition.  Recording every request would perturb the serving
// hot path, so requests are *sampled* — but by a counter hash of
// (trace_seed, req_id), never by a rate limiter or clock, so the sampled
// set is a pure function of the stream.  The same request is traced (or
// not) at any thread count, any lane block, and on either transport: the
// in-process oracle evaluates TraceSampled itself, while the socket
// loadgen evaluates it once and sets the trace flag bit in the GetRequest
// frame, so the forked fleet records the identical event chain.
//
// Events carry a per-request sequence number assigned in walk order.  The
// canonical order of a trace stream is (req_id, seq); CanonicalizeTrace
// restores it after any merge (per-worker buffers, per-daemon shards), so
// "bit-identical traces" is a plain vector equality.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "tree/routing_tree.h"
#include "util/rng.h"

namespace webwave {

enum class TraceEventKind : std::uint8_t {
  kArrival = 1,     // request entered the system; detail = doc id
  kHop = 2,         // moved to the parent node; detail = hops so far
  kFailover = 3,    // node was down, retrying above; detail = backoff slots
  kTokenGrant = 4,  // token-bucket decision at a copy; aux = admitted
  kThinning = 5,    // Poisson-thinning decision at a copy; aux = admitted
  kServed = 6,      // served here; aux = failed over, detail = hops
  kDropped = 7,     // failover budget exhausted; detail = hops
};

inline const char* TraceEventKindName(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kArrival: return "arrival";
    case TraceEventKind::kHop: return "hop";
    case TraceEventKind::kFailover: return "failover";
    case TraceEventKind::kTokenGrant: return "token_grant";
    case TraceEventKind::kThinning: return "thinning";
    case TraceEventKind::kServed: return "served";
    case TraceEventKind::kDropped: return "dropped";
  }
  return "?";
}

// One step of a traced request's walk.  24 bytes on the wire
// (MessageCodec::kTraceEventSize): req_id u64, detail u64, node u32,
// seq u16, kind u8, aux u8, little-endian.
struct TraceEvent {
  std::uint64_t req_id = 0;
  std::uint64_t detail = 0;
  NodeId node = kNoNode;
  std::uint16_t seq = 0;
  TraceEventKind kind = TraceEventKind::kArrival;
  std::uint8_t aux = 0;

  friend bool operator==(const TraceEvent& a, const TraceEvent& b) {
    return a.req_id == b.req_id && a.detail == b.detail && a.node == b.node &&
           a.seq == b.seq && a.kind == b.kind && a.aux == b.aux;
  }
  friend bool operator!=(const TraceEvent& a, const TraceEvent& b) {
    return !(a == b);
  }
};

// The sampling law: request req_id is traced iff the low `sample_shift`
// bits of the (seed, req_id) counter hash are zero — an expected 1 in
// 2^sample_shift requests, selected with no state and no coordination.
// shift <= 0 traces everything (tests), shift 14 is the default (~0.006%).
inline bool TraceSampled(std::uint64_t trace_seed, std::uint64_t req_id,
                         int sample_shift) {
  if (sample_shift <= 0) return true;
  if (sample_shift >= 64) return false;
  std::uint64_t counter = trace_seed + req_id * 0x9e3779b97f4a7c15ULL;
  const std::uint64_t mask = (std::uint64_t{1} << sample_shift) - 1;
  return (SplitMix64(counter) & mask) == 0;
}

// Restores the canonical (req_id, seq) order after any merge.  (req_id,
// seq) is unique within a stream, so the result is fully determined.
inline void CanonicalizeTrace(std::vector<TraceEvent>* events) {
  std::sort(events->begin(), events->end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.req_id != b.req_id ? a.req_id < b.req_id
                                          : a.seq < b.seq;
            });
}

}  // namespace webwave
