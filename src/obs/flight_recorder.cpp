#include "obs/flight_recorder.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "util/check.h"

namespace webwave {

const char* FlightEventKindName(FlightEventKind k) {
  switch (k) {
    case FlightEventKind::kFrameIn: return "frame_in";
    case FlightEventKind::kFrameOut: return "frame_out";
    case FlightEventKind::kConnUp: return "conn_up";
    case FlightEventKind::kConnDown: return "conn_down";
    case FlightEventKind::kTimerFire: return "timer_fire";
    case FlightEventKind::kEpoch: return "epoch";
    case FlightEventKind::kBoot: return "boot";
    case FlightEventKind::kShutdown: return "shutdown";
  }
  return "unknown";
}

namespace {

FlightEventKind KindFromName(const char* name) {
  for (int k = 1; k <= 8; ++k) {
    const auto kind = static_cast<FlightEventKind>(k);
    if (std::strcmp(name, FlightEventKindName(kind)) == 0) return kind;
  }
  return static_cast<FlightEventKind>(0);
}

}  // namespace

FlightRecorder::FlightRecorder(MonotonicClock* clock, std::size_t capacity)
    : clock_(clock), ring_(capacity) {
  WEBWAVE_REQUIRE(capacity > 0, "flight recorder needs a non-zero ring");
}

void FlightRecorder::Note(FlightEventKind kind, std::uint64_t detail,
                          std::uint32_t arg) {
  FlightEvent& e = ring_[total_ % ring_.size()];
  e.t_ns = clock_ ? clock_->NowNanos() : 0;
  e.detail = detail;
  e.arg = arg;
  e.seq = static_cast<std::uint16_t>(total_);
  e.kind = static_cast<std::uint8_t>(kind);
  e.node = 0;
  ++total_;
}

std::vector<FlightEvent> FlightRecorder::Snapshot() const {
  std::vector<FlightEvent> out;
  const std::uint64_t n = total_ < ring_.size() ? total_ : ring_.size();
  out.reserve(n);
  const std::uint64_t start = total_ - n;  // index of oldest surviving event
  for (std::uint64_t i = 0; i < n; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

std::string FlightRecorder::Dump(const std::vector<FlightEvent>& events,
                                 std::uint8_t node) {
  std::string out;
  char line[160];
  for (const FlightEvent& e : events) {
    std::snprintf(line, sizeof(line),
                  "%" PRIu64 " %u %s %" PRIu64 " %u node=%u\n", e.t_ns,
                  static_cast<unsigned>(e.seq),
                  FlightEventKindName(static_cast<FlightEventKind>(e.kind)),
                  e.detail, e.arg, static_cast<unsigned>(node));
    out += line;
  }
  return out;
}

bool FlightRecorder::Parse(const std::string& text,
                           std::vector<FlightEvent>* out) {
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    FlightEvent e;
    char name[32];
    unsigned seq = 0, arg = 0, node = 0;
    if (std::sscanf(line.c_str(),
                    "%" SCNu64 " %u %31s %" SCNu64 " %u node=%u", &e.t_ns,
                    &seq, name, &e.detail, &arg, &node) != 6) {
      return false;
    }
    const FlightEventKind kind = KindFromName(name);
    if (kind == static_cast<FlightEventKind>(0)) return false;
    e.seq = static_cast<std::uint16_t>(seq);
    e.arg = arg;
    e.kind = static_cast<std::uint8_t>(kind);
    e.node = static_cast<std::uint8_t>(node);
    out->push_back(e);
  }
  return true;
}

}  // namespace webwave
