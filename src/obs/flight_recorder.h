// A crash-surviving flight recorder: a fixed-size ring of compact events
// a daemon stamps as it runs (frame in/out, conn up/down, timer fires,
// epoch transitions).  The ring is cheap enough to leave on in
// production paths; when a daemon dies the loadgen scrapes the ring over
// the wire (kFlightRequest / kFlightReply) *before* the SIGKILL, and on
// clean shutdown the daemon dumps the ring to a per-daemon text file.
//
// Timestamps come from the injected MonotonicClock — a FakeClock makes
// the ring's content a pure function of the event sequence, which is how
// the deterministic tests pin it.  A null clock stamps zeros but still
// records the event sequence (the ordering half of the data).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/clock.h"

namespace webwave {

// Compact 24-byte event, fixed-width so the wire form (kFlightReply) is
// a flat array, like TraceEvent.
enum class FlightEventKind : std::uint8_t {
  kFrameIn = 1,    // detail = req_id or 0, arg = MsgType
  kFrameOut = 2,   // detail = req_id or 0, arg = MsgType
  kConnUp = 3,     // detail = peer index or fd, arg = role
  kConnDown = 4,   // detail = peer index or fd, arg = role
  kTimerFire = 5,  // detail = timer id
  kEpoch = 6,      // detail = new epoch
  kBoot = 7,       // detail = node index
  kShutdown = 8,   // detail = node index
};

const char* FlightEventKindName(FlightEventKind k);

struct FlightEvent {
  std::uint64_t t_ns = 0;    // MonotonicClock nanoseconds (0 if no clock)
  std::uint64_t detail = 0;  // kind-specific payload (req_id, epoch, ...)
  std::uint32_t arg = 0;     // secondary payload (msg type, role, ...)
  std::uint16_t seq = 0;     // low 16 bits of the running event counter
  std::uint8_t kind = 0;     // FlightEventKind
  std::uint8_t node = 0;     // recording daemon's index (stamped at dump)

  bool operator==(const FlightEvent& o) const {
    return t_ns == o.t_ns && detail == o.detail && arg == o.arg &&
           seq == o.seq && kind == o.kind && node == o.node;
  }
  bool operator!=(const FlightEvent& o) const { return !(*this == o); }
};

class FlightRecorder {
 public:
  // `clock` may be null (events stamp t_ns = 0); `capacity` is the ring
  // size — once full, each new event overwrites the oldest.
  FlightRecorder(MonotonicClock* clock, std::size_t capacity);

  void Note(FlightEventKind kind, std::uint64_t detail, std::uint32_t arg = 0);

  // The ring's contents oldest -> newest (at most `capacity` events, the
  // newest ones when the ring has wrapped).
  std::vector<FlightEvent> Snapshot() const;

  std::uint64_t recorded() const { return total_; }
  std::uint64_t dropped() const {
    return total_ > ring_.size() ? total_ - ring_.size() : 0;
  }
  std::size_t capacity() const { return ring_.size(); }

  // Text dump, one event per line:
  //   "<t_ns> <seq> <kind-name> <detail> <arg> node=<node>"
  // `node` stamps the recording daemon's index into every line (and into
  // the parsed events) so merged timelines keep provenance.
  static std::string Dump(const std::vector<FlightEvent>& events,
                          std::uint8_t node);
  std::string Dump(std::uint8_t node) const { return Dump(Snapshot(), node); }

  // Parses a Dump() back into events (appending to *out).  Returns false
  // on any malformed line.
  static bool Parse(const std::string& text, std::vector<FlightEvent>* out);

 private:
  MonotonicClock* clock_;
  std::vector<FlightEvent> ring_;
  std::uint64_t total_ = 0;  // events ever recorded; ring head = total_ % size
};

}  // namespace webwave
