// Per-epoch timeline emission: JSON-lines over the bench JSON writer.
//
// Run totals hide everything interesting about a closed loop; a timeline
// keeps one flat record per epoch (dirty lanes, phase timings, projector
// activity, registry snapshot) and writes them as JSON-lines so partial
// files from a crashed run still parse line-by-line.  Rendering reuses
// BenchJson — same escaping, same non-finite handling — each record being
// one self-contained {"bench": ..., fields...} line.
#pragma once

#include <string>

#include "obs/metric_registry.h"
#include "util/bench_json.h"

namespace webwave {

class Timeline {
 public:
  explicit Timeline(std::string name) : json_(std::move(name)) {}

  void BeginRecord() { json_.BeginRun(); }

  void Add(const std::string& key, double value) { json_.Add(key, value); }
  void Add(const std::string& key, long long value) { json_.Add(key, value); }
  void Add(const std::string& key, int value) { json_.Add(key, value); }
  void Add(const std::string& key, std::uint64_t value) {
    json_.Add(key, static_cast<long long>(value));
  }
  void Add(const std::string& key, const std::string& value) {
    json_.Add(key, value);
  }

  // Snapshots every metric in the registry into the current record,
  // keyed by metric name.
  void AddRegistry(const MetricRegistry& registry) {
    for (MetricRegistry::Id id = 0;
         id < static_cast<MetricRegistry::Id>(registry.size()); ++id) {
      if (registry.kind(id) == MetricRegistry::Kind::kGauge) {
        json_.Add(registry.name(id),
                  static_cast<long long>(registry.gauge(id)));
      } else {
        json_.Add(registry.name(id),
                  static_cast<long long>(registry.counter(id)));
      }
    }
  }

  std::size_t record_count() const { return json_.run_count(); }
  std::string RenderLine(std::size_t r) const { return json_.RenderLine(r); }
  bool WriteJsonLines(const std::string& path) const {
    return json_.WriteLines(path);
  }

 private:
  BenchJson json_;
};

}  // namespace webwave
