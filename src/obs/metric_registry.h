// Unified registry of named integer metrics.
//
// Every layer so far grew its own ad-hoc counter struct (ServingMetrics,
// the projectors' spill totals, netd's WireCounters).  MetricRegistry is
// the shared vocabulary on top: a flat table of named u64 counters
// (monotone, Add) and i64 gauges (latest value, Set), registered once and
// addressed by small integer ids so publishing from a hot path is an
// array add, never a hash lookup.
//
// Determinism: worker threads never touch the registry directly.  A
// worker accumulates into a Shard (a plain vector of deltas indexed by
// metric id) and the owner folds shards back at a block boundary in
// shard-index order — integer sums, so the folded totals are bit-identical
// at any thread count, same as the ServingMetrics merge rule.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace webwave {

class MetricRegistry {
 public:
  using Id = std::int32_t;
  enum class Kind : std::uint8_t { kCounter, kGauge };

  // Registers (or looks up) a metric by name.  Idempotent: the same name
  // always yields the same id; re-registering under the other kind is a
  // programming error.
  Id Counter(const std::string& name) { return Register(name, Kind::kCounter); }
  Id Gauge(const std::string& name) { return Register(name, Kind::kGauge); }

  void Add(Id id, std::uint64_t delta) { values_[Index(id)] += delta; }
  void Set(Id id, std::int64_t value) {
    values_[Index(id)] = static_cast<std::uint64_t>(value);
  }

  std::uint64_t counter(Id id) const { return values_[Index(id)]; }
  std::int64_t gauge(Id id) const {
    return static_cast<std::int64_t>(values_[Index(id)]);
  }

  std::size_t size() const { return names_.size(); }
  const std::string& name(Id id) const { return names_[Index(id)]; }
  Kind kind(Id id) const { return kinds_[Index(id)]; }

  // Per-worker delta buffer.  Sized to the registry at creation; a worker
  // Adds into it with ids registered before the parallel region started.
  struct Shard {
    std::vector<std::uint64_t> deltas;
    void Add(Id id, std::uint64_t delta) {
      deltas[static_cast<std::size_t>(id)] += delta;
    }
  };

  Shard MakeShard() const { return Shard{std::vector<std::uint64_t>(size())}; }

  // Folds one shard's deltas into the registry and zeroes the shard.
  void Fold(Shard* shard);

  // Folds every shard in index order — the canonical block-boundary merge.
  void FoldAll(std::vector<Shard>* shards) {
    for (Shard& s : *shards) Fold(&s);
  }

 private:
  Id Register(const std::string& name, Kind kind);
  static std::size_t Index(Id id) { return static_cast<std::size_t>(id); }

  std::vector<std::string> names_;
  std::vector<Kind> kinds_;
  std::vector<std::uint64_t> values_;
  std::unordered_map<std::string, Id> by_name_;
};

}  // namespace webwave
