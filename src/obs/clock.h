// Monotonic-clock interface for the epoch phase profiler.
//
// Wall time is the one thing that may never leak into an identity
// assertion — two bit-identical runs still take different nanoseconds.
// Profiling therefore goes through this interface: production code passes
// a SteadyClock, tests pass a FakeClock they advance by hand, and code
// holding no clock at all (the default everywhere) records zeros and pays
// nothing.
#pragma once

#include <chrono>
#include <cstdint>

namespace webwave {

class MonotonicClock {
 public:
  virtual ~MonotonicClock() = default;
  virtual std::uint64_t NowNanos() = 0;
};

class SteadyClock final : public MonotonicClock {
 public:
  std::uint64_t NowNanos() override {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }
};

// Hand-advanced clock for deterministic profiler tests.
class FakeClock final : public MonotonicClock {
 public:
  std::uint64_t NowNanos() override { return now_ns_; }
  void Advance(std::uint64_t delta_ns) { now_ns_ += delta_ns; }
  void Set(std::uint64_t now_ns) { now_ns_ = now_ns; }

 private:
  std::uint64_t now_ns_ = 0;
};

}  // namespace webwave
