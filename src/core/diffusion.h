// The load diffusion method of §2 on general graphs.
//
// The classic dynamic load-balancing iteration (Cybenko 1989; Bertsekas &
// Tsitsiklis 1989): x(t) = D·x(t−1), where the diffusion matrix D has
// D_ij = α_ij for neighbors, D_ii = 1 − Σ_j α_ij.  When the graph is
// connected and 1 − Σ_j α_ij > 0, the iteration converges to the uniform
// (GLE) vector exponentially fast:
//
//     ‖D^t x(0) − u‖ <= γ^t ‖x(0) − u‖,
//
// where γ is the second-largest eigenvalue magnitude of D.  WebWave is
// this method specialized to routing trees with the NSS cap; this module
// provides the unconstrained version for the §2 baselines, plus the
// spectral machinery to compute γ and verify the bound, and the k-ary
// n-cube optimal parameter of Xu & Lau (ref. [29]).
#pragma once

#include <cstdint>
#include <vector>

#include "tree/routing_tree.h"

namespace webwave {

// A simple undirected graph on nodes 0..n-1.
class UndirectedGraph {
 public:
  explicit UndirectedGraph(int n);

  int size() const { return static_cast<int>(adjacency_.size()); }
  void AddEdge(int u, int v);
  const std::vector<int>& neighbors(int v) const;
  int degree(int v) const;
  int edge_count() const { return edge_count_; }
  bool IsConnected() const;
  int MaxDegree() const;

 private:
  std::vector<std::vector<int>> adjacency_;
  int edge_count_ = 0;
};

// Regular topologies used in the diffusion literature the paper cites.
UndirectedGraph MakeRingGraph(int n);
UndirectedGraph MakePathGraph(int n);
UndirectedGraph MakeCompleteGraph(int n);
UndirectedGraph MakeHypercubeGraph(int dimensions);
UndirectedGraph MakeTorusGraph(int width, int height);
// k-ary n-cube: n dimensions of k positions each, wrap-around links
// (k = 2 gives the hypercube, n = 1 the ring).
UndirectedGraph MakeKAryNCubeGraph(int k, int n);
UndirectedGraph GraphFromTree(const RoutingTree& tree);

// Dense row-major diffusion matrix.
class DiffusionMatrix {
 public:
  // Uniform α on every edge.  Requires α·max_degree < 1 so that the
  // diagonal stays positive (Cybenko's condition (1)).
  static DiffusionMatrix Uniform(const UndirectedGraph& graph, double alpha);

  // α_ij = 1/(1 + max(deg i, deg j)) — always satisfies the condition.
  static DiffusionMatrix DegreeBased(const UndirectedGraph& graph);

  int size() const { return n_; }
  double at(int i, int j) const { return data_[static_cast<std::size_t>(i) * n_ + j]; }

  // One synchronous diffusion sweep: returns D·x.
  std::vector<double> Apply(const std::vector<double>& x) const;

  // γ: the second-largest eigenvalue magnitude, computed by power
  // iteration on the subspace orthogonal to the all-ones eigenvector (D is
  // symmetric and doubly stochastic for the constructors above).
  double SpectralGamma(int iterations = 2000) const;

 private:
  DiffusionMatrix(int n) : n_(n), data_(static_cast<std::size_t>(n) * n, 0) {}
  int n_;
  std::vector<double> data_;
};

// Sparse diffusion matrix in compressed-sparse-row (CSR) form.  Each row
// stores its diagonal entry plus one entry per neighbor, in ascending
// column order, so Apply costs O(n + E) and a million-node tree fits in a
// few dozen megabytes where the dense matrix would need terabytes.  The
// spectral machinery is matrix-free: SpectralGamma runs the same deflated
// power iteration as the dense class, n² entries are never materialized.
class SparseDiffusionMatrix {
 public:
  // Uniform α on every edge; requires α·max_degree < 1 (Cybenko (1)).
  static SparseDiffusionMatrix Uniform(const UndirectedGraph& graph,
                                       double alpha);

  // α_ij = 1/(1 + max(deg i, deg j)) — always satisfies the condition.
  static SparseDiffusionMatrix DegreeBased(const UndirectedGraph& graph);

  // Compresses a dense matrix (drops exact zeros).  Used to route the
  // dense iteration helpers through the sparse kernel.
  static SparseDiffusionMatrix FromDense(const DiffusionMatrix& dense);

  int size() const { return n_; }
  // Stored entries (diagonal + one per edge endpoint).
  std::size_t nonzeros() const { return values_.size(); }

  // O(row degree) entry lookup, for tests and cross-checks.
  double at(int i, int j) const;

  // One synchronous diffusion sweep: returns D·x in O(n + E).
  std::vector<double> Apply(const std::vector<double>& x) const;
  // Allocation-free form: y = D·x (y is resized; must not alias x).
  void ApplyInto(const std::vector<double>& x, std::vector<double>& y) const;

  // γ: second-largest eigenvalue magnitude via power iteration deflated
  // against the all-ones eigenvector, one sparse sweep per iteration.
  double SpectralGamma(int iterations = 2000) const;

 private:
  explicit SparseDiffusionMatrix(int n)
      : n_(n), row_ptr_(static_cast<std::size_t>(n) + 1, 0) {}

  int n_;
  std::vector<std::size_t> row_ptr_;  // n + 1 offsets into col_/values_
  std::vector<std::int32_t> col_;
  std::vector<double> values_;
};

// The optimal uniform diffusion parameter for a k-ary n-cube (Xu & Lau):
// α* = 2 / (μ_min + μ_max) where μ are the extreme nonzero Laplacian
// eigenvalues, balancing the two ends of the spectrum.
double OptimalAlphaKAryNCube(int k, int n);

// Runs the synchronous diffusion iteration, recording the Euclidean
// distance to the uniform vector after each sweep.
struct DiffusionRun {
  std::vector<double> distances;  // distances[t] = ‖x(t) − u‖
  std::vector<double> final_load;
  bool reached_tolerance = false;
};
DiffusionRun RunDiffusion(const SparseDiffusionMatrix& matrix,
                          std::vector<double> initial, double tol,
                          int max_steps);

// Dense convenience overload: compresses to CSR once and runs the sparse
// iteration, so long runs cost O(n²) once instead of per sweep.
DiffusionRun RunDiffusion(const DiffusionMatrix& matrix,
                          std::vector<double> initial, double tol,
                          int max_steps);

// Verifies Cybenko's bound ‖D^t x − u‖ <= γ^t ‖x(0) − u‖ on a recorded run.
bool CybenkoBoundHolds(const DiffusionRun& run, double gamma,
                       double slack = 1e-9);

// Asynchronous diffusion under partial asynchronism (Bertsekas &
// Tsitsiklis): each sweep, every node independently updates with
// probability `activation`, using neighbor values that are up to
// `max_delay` sweeps stale (per-edge random delays).  Converges to the
// uniform vector whenever the graph is connected, the diagonal is
// positive, and the delays are bounded — the citation the paper relies on
// for WebWave's realistic (non-instantaneous) setting.
struct AsyncDiffusionOptions {
  double activation = 0.7;
  int max_delay = 2;
  std::uint64_t seed = 1;
};

DiffusionRun RunAsyncDiffusion(const UndirectedGraph& graph, double alpha,
                               std::vector<double> initial,
                               const AsyncDiffusionOptions& options,
                               double tol, int max_steps);

}  // namespace webwave
