// Batched WebWave: a whole catalog of hot documents stepped over one
// shared routing tree in a single pass, in parallel across documents.
//
// A home server rarely publishes one hot document; it publishes a catalog,
// and every document's diffusion runs over the *same* topology.  Running D
// independent WebWaveSimulator instances duplicates the edge structure,
// the alpha table and the gossip bookkeeping D times and touches them in D
// separate passes.  This simulator keeps one copy of the shared edge
// arrays (parent, child, alpha — identical for every document) and gives
// each document a *load lane*: flat per-document slices of the served,
// forwarded, spontaneous and estimate arrays, laid out document-major so
// the per-edge sweep of one document is contiguous in memory.
//
// Semantics are exactly N independent simulators, document for document:
// lane d evolves as WebWaveSimulator(tree, spontaneous[d], opt_d) would,
// where opt_d is the shared options with seed = options.seed + d (each
// lane owns an RNG stream, so asynchronous runs also match).  The batch
// form exists purely for locality, shared structure and parallelism —
// per-lane results are bit-identical to the unbatched protocol, which the
// property tests assert.
//
// Threading: lanes are independent between gossip refreshes (each lane
// owns its load, estimate, RNG and history slices), so Step and
// ApplyDemandEvents sweep lanes on a WorkerPool with a deterministic
// static partition.  Every per-lane byte is written by exactly one worker
// and per-edge scratch is per-worker, so results are bit-identical to the
// serial path at any options.threads value.
//
// Demand churn is first-class: ApplyDemandEvents takes a batch of
// (doc, node, rate) events and re-projects each affected lane exactly as
// WebWaveSimulator::ApplyDemandEvents would (same ProjectLane kernel, same
// per-lane gossip-history restart), so rotating-hot-spot and flash-crowd
// scenarios run at catalog scale without leaving the fast path.
//
// Memory: with zero gossip delay the history ring is elided, so a lane
// costs 3n + 2(n−1) doubles — about 40 bytes per (node, document) pair;
// 10⁶ nodes × 64 documents fits in ~2.5 GB.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/webwave_kernel.h"
#include "core/webwave_options.h"
#include "tree/routing_tree.h"
#include "util/rng.h"
#include "util/span.h"
#include "util/worker_pool.h"

namespace webwave {

class BatchWebWaveSimulator {
 public:
  // spontaneous[d][v] is document d's spontaneous request rate at node v.
  // All lanes share `tree` and `options`; lane d's RNG stream is seeded
  // options.seed + d.
  BatchWebWaveSimulator(const RoutingTree& tree,
                        std::vector<std::vector<double>> spontaneous,
                        WebWaveOptions options = {});

  // One diffusion period for every document lane.
  void Step();

  // Applies a batch of demand changes: event (doc, node, rate) sets
  // document doc's spontaneous rate at `node`, then every *affected* lane
  // is re-projected onto its new feasible set, its gossip history is
  // restarted and its estimates refreshed — exactly what
  // WebWaveSimulator::ApplyDemandEvents does to a single lane, so per-lane
  // equivalence with independent simulators survives churn.  Untouched
  // lanes are not perturbed in any way (their delayed-gossip history keeps
  // running).  Later events win when a batch writes one (doc, node) cell
  // twice.
  void ApplyDemandEvents(Span<DemandEvent> events);

  int steps() const { return steps_; }
  int doc_count() const { return docs_; }
  int node_count() const { return tree_.size(); }
  int thread_count() const { return pool_->thread_count(); }

  // Lane d's served (L) and forwarded (A) vectors, length node_count().
  // Pointers into the document-major flat arrays; valid until the next
  // Step().
  const double* served(int d) const { return &served_[LaneBase(d)]; }
  const double* forwarded(int d) const { return &forwarded_[LaneBase(d)]; }
  std::vector<double> ServedLane(int d) const;

  // Lane d's spontaneous rates as currently in force (reflects applied
  // demand events).
  std::vector<double> SpontaneousLane(int d) const;

  // Total served rate per node, summed across documents.
  std::vector<double> NodeLoads() const;
  double MaxNodeLoad() const;

  // Quota-export hook for the serving data plane: visits every (node,
  // document) cell whose current served rate exceeds min_rate, nodes
  // ascending and documents ascending within a node — the order a CSR
  // quota snapshot wants — without materializing the node-major matrix.
  // The served rates *are* the per-copy service quotas the protocol has
  // diffused to (§7: "WebWave implicitly determines ... the number of
  // requests allocated to each copy"); the forwarded rate alongside lets
  // the consumer derive the copy's share of its passing flow,
  // served / (served + forwarded).
  void ExportQuotas(
      double min_rate,
      const std::function<void(NodeId, std::int32_t, double served,
                               double forwarded)>& sink) const;

  // Euclidean distance of lane d's served vector to a target assignment.
  double DistanceTo(int d, const std::vector<double>& target) const;

  // Per-lane flow conservation, NSS and non-negativity; throws
  // std::logic_error on violation.
  void CheckInvariants(double tol = 1e-6) const;

 private:
  std::size_t LaneBase(int d) const;
  std::size_t LaneEdgeBase(int d) const;
  void RefreshLaneEstimates(int d);
  void PushLaneHistory(int d);
  // Lane d's served vector as gossip currently sees it: the live lane at
  // zero delay, otherwise the history slot lagging lane_head_[d] by
  // min(gossip_delay, lane_filled_[d] - 1) steps.
  const double* DelayedLaneView(int d) const;

  const RoutingTree& tree_;
  WebWaveOptions options_;
  int docs_;
  int steps_ = 0;

  // Shared structure-of-arrays edge layout (ascending child id), one copy
  // for all documents; stepped by the same kernel as WebWaveSimulator.
  internal::EdgeArrays edges_;
  std::vector<double> capacity_;
  // Per-edge scratch, one slice of edges_.size() per pool worker.
  std::vector<double> delta_;

  // Document-major load lanes: lane d occupies [d·n, (d+1)·n).
  std::vector<double> spontaneous_;
  std::vector<double> served_;
  std::vector<double> forwarded_;
  // Edge-indexed estimates, document-major: slot d·(n−1) + k.
  std::vector<double> est_down_;
  std::vector<double> est_up_;

  // Flat history ring, (gossip_delay + 1) slots of docs·n doubles each;
  // empty when gossip_delay == 0 (gossip then reads the live lanes).
  // Lane d's slice of slot s starts at s·docs·n + d·n.  The ring position
  // is tracked per lane: demand churn restarts one lane's history without
  // disturbing the others (each lane's ring is independent — a lane only
  // ever reads and writes its own slices).
  std::vector<double> history_;
  std::vector<std::uint32_t> lane_head_;
  std::vector<std::uint32_t> lane_filled_;

  std::vector<Rng> lane_rng_;  // one independent stream per document

  std::unique_ptr<WorkerPool> pool_;
  std::vector<std::uint8_t> churned_;  // per-lane scratch of ApplyDemandEvents
};

}  // namespace webwave
