// Batched WebWave: a whole catalog of hot documents stepped over one
// shared routing tree in a single pass, in parallel across documents.
//
// A home server rarely publishes one hot document; it publishes a catalog,
// and every document's diffusion runs over the *same* topology.  Running D
// independent WebWaveSimulator instances duplicates the edge structure and
// the gossip bookkeeping D times and touches them in D separate passes.
//
// Layout — document blocks.  Lanes are grouped into blocks of
// options.lane_block documents (B, default 8; the last block is ragged
// when D is not a multiple).  Within a block every per-node quantity is
// stored *lane-interleaved*: served_[block_base + v·W + b] is lane
// (g·B + b)'s value at node v, W the block's width.  One sweep of the
// shared edge arrays (parent, child, alpha — one copy for the whole
// catalog) advances all W lanes of a block through an inner loop over b
// that is contiguous in memory and auto-vectorizable, so the edge
// metadata is streamed once per *block* instead of once per document —
// D/B× less shared-structure traffic than the document-major layout
// (which is exactly the B = 1 special case).
//
// Estimates — a double-buffered gossip plane.  Each block owns one
// node-indexed estimate plane (its *front* buffer); the step kernel reads
// the two endpoint slots of each edge from it directly, which replaces
// the two edge-indexed estimate arrays of the old layout (2(n−1) doubles
// per lane) with one n-sized plane per lane and turns a gossip refresh
// into a straight copy — half the refresh's read+write traffic.  With
// gossip_delay = 0 there is no ring: a refresh copies the live served
// block into the front plane.  With gossip_delay > 0 each block owns a
// ring of gossip_delay + 1 served-snapshot slots (pushed per step) plus
// the front plane, all behind a per-block offset table: in the steady
// state a refresh *swaps* the front plane with the consumed ring slot —
// a pointer exchange, zero copies — because the consumed slot is exactly
// the slot the very next push overwrites.  Only when lanes of one block
// disagree on their history depth (for gossip_delay steps after a
// demand-churn restart touched some of them) does the refresh fall back
// to per-lane strided copies into the front plane.  Either path installs
// identical bytes, so results do not depend on which one ran.
//
// Semantics are exactly D independent simulators, document for document:
// lane d evolves as WebWaveSimulator(tree, spontaneous[d], opt_d) would,
// where opt_d is the shared options with seed = options.seed + d (each
// lane owns an RNG stream, so asynchronous runs also match).  Per-lane
// arithmetic inside a block is independent and runs in the same IEEE
// order at every width, so the equivalence is bit-exact at every
// lane_block value — asserted by webwave_batch_test at ragged catalog
// sizes, under churn, asynchronously and at 1/2/8 threads.
//
// Threading: a document block is the unit of parallel work.  Blocks are
// independent (each owns its load, estimate, ring and RNG slices), so
// Step and ApplyDemandEvents sweep them on a WorkerPool with a
// deterministic static partition; every per-block byte is written by
// exactly one worker and per-edge scratch is per-worker, so results are
// bit-identical to the serial path at any options.threads value.
//
// Demand churn is first-class: ApplyDemandEvents takes a batch of
// (doc, node, rate) events and re-projects each affected lane exactly as
// WebWaveSimulator::ApplyDemandEvents would (same ProjectLane kernel, same
// per-lane gossip-history restart), so rotating-hot-spot and flash-crowd
// scenarios run at catalog scale without leaving the fast path.
//
// Dirty-lane tracking: the engine records which lanes' (served,
// forwarded) state actually *changed* — a demand event touched them, or a
// step moved at least one of their values by at least 1 ulp.  A lane that
// has diffused to its floating-point fixed point steps clean.  The set
// feeds QuotaSnapshot::RefreshFromBatch, which rewrites only dirty lanes'
// cells of the serving plane's CSR snapshot; callers reset the set with
// ClearDirtyLanes() after snapshotting (forgetting to reset is safe —
// the set only over-approximates, never misses a change).
//
// Memory: under the default instantaneous gossip (period 1, delay 0) no
// estimate storage exists at all — the kernel reads the served block as
// the estimate plane, which is bitwise what a per-step refresh would have
// installed — so a lane costs 3n doubles (spontaneous, served, forwarded)
// ≈ 24 bytes per (node, document) pair: 10⁶ nodes × 64 documents in
// ~1.5 GB, plus edges·lane_block step scratch per worker.  Non-trivial
// gossip adds the front plane (n per lane) and, when delayed, the ring
// (gossip_delay + 1 slots of n per lane).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/webwave_kernel.h"
#include "core/webwave_options.h"
#include "tree/routing_tree.h"
#include "util/rng.h"
#include "util/span.h"
#include "util/worker_pool.h"

namespace webwave {

class BatchWebWaveSimulator {
 public:
  // spontaneous[d][v] is document d's spontaneous request rate at node v.
  // All lanes share `tree` and `options`; lane d's RNG stream is seeded
  // options.seed + d.  `edges` optionally shares one flattened edge
  // structure with other simulators over the same tree (see
  // internal::BuildSharedEdgeArrays); null builds a private copy.
  BatchWebWaveSimulator(const RoutingTree& tree,
                        std::vector<std::vector<double>> spontaneous,
                        WebWaveOptions options = {},
                        internal::SharedEdgeArrays edges = nullptr);

  // One diffusion period for every document lane.
  void Step();

  // Applies a batch of demand changes: event (doc, node, rate) sets
  // document doc's spontaneous rate at `node`, then every *affected* lane
  // is re-projected onto its new feasible set, its gossip history is
  // restarted and its estimates refreshed — exactly what
  // WebWaveSimulator::ApplyDemandEvents does to a single lane, so per-lane
  // equivalence with independent simulators survives churn.  Untouched
  // lanes are not perturbed in any way (their delayed-gossip history keeps
  // running).  Later events win when a batch writes one (doc, node) cell
  // twice.
  void ApplyDemandEvents(Span<DemandEvent> events);

  int steps() const { return steps_; }
  int doc_count() const { return docs_; }
  int node_count() const { return tree_.size(); }
  int thread_count() const { return pool_->thread_count(); }
  // Effective document block width (options.lane_block clamped to the
  // catalog size).
  int lane_block() const { return block_; }
  internal::SharedEdgeArrays shared_edges() const { return edges_; }

  // Lane d's served (L) / forwarded (A) / spontaneous vectors, length
  // node_count(), gathered out of the interleaved block storage.
  std::vector<double> ServedLane(int d) const;
  std::vector<double> ForwardedLane(int d) const;
  std::vector<double> SpontaneousLane(int d) const;

  // Total served rate per node, summed across documents.
  std::vector<double> NodeLoads() const;
  double MaxNodeLoad() const;

  // Dirty-lane set (see file comment): lanes whose served/forwarded state
  // changed since construction or the last ClearDirtyLanes(), ascending.
  std::vector<int> DirtyLanes() const;
  bool LaneDirty(int d) const;
  int dirty_lane_count() const;
  // Resets the set — call after exporting a quota snapshot so the next
  // export sees only what changed in between.
  void ClearDirtyLanes();

  // Quota-export hook for the serving data plane: visits every (node,
  // document) cell whose current served rate exceeds min_rate, nodes
  // ascending and documents ascending within a node — the order a CSR
  // quota snapshot wants — without materializing the node-major matrix.
  // The served rates *are* the per-copy service quotas the protocol has
  // diffused to (§7: "WebWave implicitly determines ... the number of
  // requests allocated to each copy"); the forwarded rate alongside lets
  // the consumer derive the copy's share of its passing flow,
  // served / (served + forwarded).
  void ExportQuotas(
      double min_rate,
      const std::function<void(NodeId, std::int32_t, double served,
                               double forwarded)>& sink) const;

  // One exported (node, document) quota cell (see ExportQuotas).
  struct QuotaCell {
    NodeId node;
    std::int32_t doc;
    double served;
    double forwarded;
  };

  // A subset of documents' cells only (lanes must be ascending and
  // unique), appended to `out` in ExportQuotas order — the
  // incremental-snapshot counterpart of ExportQuotas
  // (QuotaSnapshot::RefreshFromBatch feeds it the dirty set).  One
  // node-major sweep serves all requested lanes at once, so lanes sharing
  // a block share its cache lines instead of each paying a full strided
  // re-scan; the sweep fills a plain vector (no per-cell callback) so the
  // inner loop stays tight.
  void ExportLanesQuotas(Span<const int> lanes, double min_rate,
                         std::vector<QuotaCell>* out) const;

  // Euclidean distance of lane d's served vector to a target assignment.
  double DistanceTo(int d, const std::vector<double>& target) const;

  // Per-lane flow conservation, NSS and non-negativity; throws
  // std::logic_error on violation.
  void CheckInvariants(double tol = 1e-6) const;

 private:
  // Gossip period 1 with delay 0 (the paper's instantaneous-gossip
  // default): every refresh would copy the served block into the front
  // plane, so the plane would always be bitwise the start-of-step served
  // state — no arena is kept and the kernel reads the served block
  // directly.
  bool InstantGossip() const {
    return options_.gossip_period == 1 && options_.gossip_delay == 0;
  }
  // Block bookkeeping.  Block g holds lanes [g·B, g·B + BlockWidth(g));
  // all blocks before the last are full, so block g's node-indexed arrays
  // start at g·B·n and its edge-indexed scratch at g·B·(n−1).
  int BlockOf(int d) const { return d / block_; }
  int LaneInBlock(int d) const { return d % block_; }
  int BlockWidth(int g) const;
  std::size_t BlockNodeBase(int g) const;
  // Flat index of (lane d, node v) in the blocked node-major arrays.
  std::size_t LaneIndex(int d, NodeId v) const;

  // Gossip-plane arena accessors: each block owns kFrontSlot() + 1 buffers
  // of n·W doubles in gossip_arena_ (just the front plane at zero delay),
  // addressed through plane_off_ so a refresh can swap buffers.
  int ring_slots() const { return options_.gossip_delay + 1; }
  int slots_per_block() const {
    return options_.gossip_delay > 0 ? ring_slots() + 1 : 1;
  }
  int FrontSlot() const { return slots_per_block() - 1; }
  double* PlaneAt(int g, int slot);
  const double* PlaneAt(int g, int slot) const;

  void RefreshBlockEstimates(int g);
  void PushBlockHistory(int g);
  // Restart lane d's gossip history and estimates after churn: the
  // current head slot and the front plane both receive the lane's served
  // column, and the lane's history depth resets to 1.
  void RestartLaneGossip(int d);
  std::vector<double> GatherLane(const std::vector<double>& blocked,
                                 int d) const;

  const RoutingTree& tree_;
  WebWaveOptions options_;
  int docs_;
  int block_;   // effective lane_block (clamped to docs_)
  int blocks_;  // ceil(docs_ / block_)
  int steps_ = 0;

  // Shared structure-of-arrays edge layout (ascending child id), one copy
  // for all documents; stepped by the same kernel as WebWaveSimulator.
  internal::SharedEdgeArrays edges_;
  std::vector<double> capacity_;
  // Per-edge scratch, edges·block_ doubles per pool worker, allocated on a
  // worker's first block (the pool may hold more workers than blocks —
  // its size is part of the thread_count() contract — and idle workers
  // should not cost 8·edges bytes each).
  std::vector<std::vector<double>> delta_;

  // Blocked load lanes (layout in the file comment).
  std::vector<double> spontaneous_;
  std::vector<double> served_;
  std::vector<double> forwarded_;

  // Gossip plane arena: per block, ring slots (delay > 0 only) + front
  // plane, addressed through plane_off_[g·slots_per_block() + slot].
  std::vector<double> gossip_arena_;
  std::vector<std::size_t> plane_off_;
  std::vector<std::uint32_t> block_head_;   // ring position, per block
  std::vector<std::uint32_t> lane_filled_;  // history depth, per lane

  std::vector<Rng> lane_rng_;  // one independent stream per document

  std::vector<std::uint8_t> dirty_;    // per lane, since ClearDirtyLanes
  std::vector<std::uint8_t> churned_;  // per-lane scratch of ApplyDemandEvents

  std::unique_ptr<WorkerPool> pool_;
};

}  // namespace webwave
