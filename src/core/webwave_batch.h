// Batched WebWave: a whole catalog of hot documents stepped over one
// shared routing tree in a single pass.
//
// A home server rarely publishes one hot document; it publishes a catalog,
// and every document's diffusion runs over the *same* topology.  Running D
// independent WebWaveSimulator instances duplicates the edge structure,
// the alpha table and the gossip bookkeeping D times and touches them in D
// separate passes.  This simulator keeps one copy of the shared edge
// arrays (parent, child, alpha — identical for every document) and gives
// each document a *load lane*: flat per-document slices of the served,
// forwarded, spontaneous and estimate arrays, laid out document-major so
// the per-edge sweep of one document is contiguous in memory.
//
// Semantics are exactly N independent simulators, document for document:
// lane d evolves as WebWaveSimulator(tree, spontaneous[d], opt_d) would,
// where opt_d is the shared options with seed = options.seed + d (each
// lane owns an RNG stream, so asynchronous runs also match).  The batch
// form exists purely for locality and shared structure — per-lane results
// are bit-identical to the unbatched protocol, which the property tests
// assert.
//
// Memory: with zero gossip delay the history ring is elided, so a lane
// costs 3n + 2(n−1) doubles — about 40 bytes per (node, document) pair;
// 10⁶ nodes × 64 documents fits in ~2.5 GB.
#pragma once

#include <cstdint>
#include <vector>

#include "core/webwave_kernel.h"
#include "core/webwave_options.h"
#include "tree/routing_tree.h"
#include "util/rng.h"

namespace webwave {

class BatchWebWaveSimulator {
 public:
  // spontaneous[d][v] is document d's spontaneous request rate at node v.
  // All lanes share `tree` and `options`; lane d's RNG stream is seeded
  // options.seed + d.
  BatchWebWaveSimulator(const RoutingTree& tree,
                        std::vector<std::vector<double>> spontaneous,
                        WebWaveOptions options = {});

  // One diffusion period for every document lane.
  void Step();

  int steps() const { return steps_; }
  int doc_count() const { return docs_; }
  int node_count() const { return tree_.size(); }

  // Lane d's served (L) and forwarded (A) vectors, length node_count().
  // Pointers into the document-major flat arrays; valid until the next
  // Step().
  const double* served(int d) const { return &served_[LaneBase(d)]; }
  const double* forwarded(int d) const { return &forwarded_[LaneBase(d)]; }
  std::vector<double> ServedLane(int d) const;

  // Total served rate per node, summed across documents.
  std::vector<double> NodeLoads() const;
  double MaxNodeLoad() const;

  // Euclidean distance of lane d's served vector to a target assignment.
  double DistanceTo(int d, const std::vector<double>& target) const;

  // Per-lane flow conservation, NSS and non-negativity; throws
  // std::logic_error on violation.
  void CheckInvariants(double tol = 1e-6) const;

 private:
  std::size_t LaneBase(int d) const;
  void RefreshEstimates();

  const RoutingTree& tree_;
  WebWaveOptions options_;
  int docs_;
  int steps_ = 0;

  // Shared structure-of-arrays edge layout (ascending child id), one copy
  // for all documents; stepped by the same kernel as WebWaveSimulator.
  internal::EdgeArrays edges_;
  std::vector<double> capacity_;
  std::vector<double> delta_;  // per-edge scratch, reused by every lane

  // Document-major load lanes: lane d occupies [d·n, (d+1)·n).
  std::vector<double> spontaneous_;
  std::vector<double> served_;
  std::vector<double> forwarded_;
  // Edge-indexed estimates, document-major: slot d·(n−1) + k.
  std::vector<double> est_down_;
  std::vector<double> est_up_;

  // Flat history ring, (gossip_delay + 1) slots of docs·n doubles each;
  // empty when gossip_delay == 0 (gossip then reads the live lanes).
  std::vector<double> history_;
  std::size_t history_head_ = 0;
  std::size_t history_filled_ = 1;

  std::vector<Rng> lane_rng_;  // one independent stream per document
};

}  // namespace webwave
