#include "core/tlb.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/load_model.h"
#include "util/check.h"

namespace webwave {

int LexCompareMinimax(const std::vector<double>& a,
                      const std::vector<double>& b, double tol) {
  WEBWAVE_REQUIRE(a.size() == b.size(), "vector sizes differ");
  std::vector<double> sa(a), sb(b);
  std::sort(sa.rbegin(), sa.rend());
  std::sort(sb.rbegin(), sb.rend());
  for (std::size_t i = 0; i < sa.size(); ++i) {
    if (sa[i] < sb[i] - tol) return -1;
    if (sa[i] > sb[i] + tol) return 1;
  }
  return 0;
}

bool SatisfiesTlb(const RoutingTree& tree,
                  const std::vector<double>& spontaneous,
                  const std::vector<double>& load, double tol) {
  const std::size_t n = static_cast<std::size_t>(tree.size());
  WEBWAVE_REQUIRE(spontaneous.size() == n && load.size() == n,
                  "size mismatch");
  if (!CheckFeasible(tree, spontaneous, load, tol).ok()) return false;

  const std::vector<double> forwarded =
      ForwardedRates(tree, spontaneous, load);
  for (NodeId v = 0; v < tree.size(); ++v) {
    if (tree.is_root(v)) continue;
    const NodeId p = tree.parent(v);
    const double lv = load[static_cast<std::size_t>(v)];
    const double lp = load[static_cast<std::size_t>(p)];
    // Lemma 1: monotone non-increasing down the tree.
    if (lv > lp + tol) return false;
    // Lemma 2 / fold structure: load crosses an edge only between nodes of
    // equal load (an edge interior to a fold); across a strict decrease the
    // forwarded rate must vanish.
    if (lv < lp - tol && forwarded[static_cast<std::size_t>(v)] > tol)
      return false;
  }
  return true;
}

namespace {

// State for the max-mean-region solver: finds, within the remaining
// subtree rooted at `root` (nodes with alive[v] == true), the upward-closed
// connected region of maximum mean spontaneous rate, via Dinkelbach
// iteration on the parametric problem  max Σ_{v∈R} (E_v − λ).
class MaxMeanRegionFinder {
 public:
  MaxMeanRegionFinder(const RoutingTree& tree,
                      const std::vector<double>& spontaneous)
      : tree_(tree),
        spontaneous_(spontaneous),
        alive_(static_cast<std::size_t>(tree.size()), true),
        gain_(static_cast<std::size_t>(tree.size()), 0),
        chosen_(static_cast<std::size_t>(tree.size()), false) {}

  // Returns the members of the max-mean region rooted at `root` and its
  // mean; marks them dead.  Appends roots of the detached subtrees (alive
  // children of region members outside the region) to `next_roots`.
  std::pair<std::vector<NodeId>, double> ExtractRegion(
      NodeId root, std::vector<NodeId>& next_roots) {
    double lambda = spontaneous_[static_cast<std::size_t>(root)];
    std::vector<NodeId> region;
    double mean = lambda;
    // Dinkelbach: at each step solve the parametric DP at λ; the optimal
    // region's mean strictly improves until a fixed point (finite, since
    // each λ corresponds to a distinct region value).
    for (int guard = 0; guard < tree_.size() + 2; ++guard) {
      ComputeGains(root, lambda);
      region = CollectChosen(root);
      double sum = 0;
      for (const NodeId v : region) sum += spontaneous_[static_cast<std::size_t>(v)];
      mean = sum / static_cast<double>(region.size());
      if (mean <= lambda + 1e-12) break;
      lambda = mean;
    }
    for (const NodeId v : region) {
      alive_[static_cast<std::size_t>(v)] = false;
    }
    for (const NodeId v : region)
      for (const NodeId c : tree_.children(v))
        if (alive_[static_cast<std::size_t>(c)]) next_roots.push_back(c);
    return {std::move(region), mean};
  }

 private:
  // Bottom-up DP over the alive subtree rooted at `root`:
  //   gain(v) = (E_v − λ) + Σ_{alive child c} max(0, gain(c)).
  // chosen_[c] records whether child c's subregion is included.
  void ComputeGains(NodeId root, double lambda) {
    const std::vector<NodeId> order = AliveSubtreePostorder(root);
    for (const NodeId v : order) {
      double g = spontaneous_[static_cast<std::size_t>(v)] - lambda;
      for (const NodeId c : tree_.children(v)) {
        if (!alive_[static_cast<std::size_t>(c)]) continue;
        if (gain_[static_cast<std::size_t>(c)] > 0) {
          g += gain_[static_cast<std::size_t>(c)];
          chosen_[static_cast<std::size_t>(c)] = true;
        } else {
          chosen_[static_cast<std::size_t>(c)] = false;
        }
      }
      gain_[static_cast<std::size_t>(v)] = g;
    }
  }

  std::vector<NodeId> AliveSubtreePostorder(NodeId root) const {
    std::vector<NodeId> pre;
    std::vector<NodeId> stack = {root};
    while (!stack.empty()) {
      const NodeId v = stack.back();
      stack.pop_back();
      pre.push_back(v);
      for (const NodeId c : tree_.children(v))
        if (alive_[static_cast<std::size_t>(c)]) stack.push_back(c);
    }
    std::reverse(pre.begin(), pre.end());
    return pre;
  }

  // The region: root plus every chosen child subregion, top-down.
  std::vector<NodeId> CollectChosen(NodeId root) const {
    std::vector<NodeId> region;
    std::vector<NodeId> stack = {root};
    while (!stack.empty()) {
      const NodeId v = stack.back();
      stack.pop_back();
      region.push_back(v);
      for (const NodeId c : tree_.children(v))
        if (alive_[static_cast<std::size_t>(c)] &&
            chosen_[static_cast<std::size_t>(c)])
          stack.push_back(c);
    }
    return region;
  }

  const RoutingTree& tree_;
  const std::vector<double>& spontaneous_;
  std::vector<bool> alive_;
  std::vector<double> gain_;
  std::vector<bool> chosen_;
};

}  // namespace

std::vector<double> SolveTlbByMaxMeanRegions(
    const RoutingTree& tree, const std::vector<double>& spontaneous) {
  WEBWAVE_REQUIRE(
      spontaneous.size() == static_cast<std::size_t>(tree.size()),
      "spontaneous size mismatch");
  std::vector<double> load(spontaneous.size(), 0);
  MaxMeanRegionFinder finder(tree, spontaneous);
  std::vector<NodeId> roots = {tree.root()};
  while (!roots.empty()) {
    const NodeId r = roots.back();
    roots.pop_back();
    const auto [region, mean] = finder.ExtractRegion(r, roots);
    for (const NodeId v : region) load[static_cast<std::size_t>(v)] = mean;
  }
  return load;
}

std::vector<double> SolveTlbBruteForce(const RoutingTree& tree,
                                       const std::vector<double>& spontaneous) {
  const int n = tree.size();
  WEBWAVE_REQUIRE(n <= 20, "brute force limited to 20 nodes");
  WEBWAVE_REQUIRE(spontaneous.size() == static_cast<std::size_t>(n),
                  "spontaneous size mismatch");

  // Non-root nodes in a fixed order; bit b of the mask means "the edge from
  // edge_child[b] to its parent is cut", i.e. edge_child[b] roots a fold.
  std::vector<NodeId> edge_child;
  edge_child.reserve(static_cast<std::size_t>(n - 1));
  for (NodeId v = 0; v < n; ++v)
    if (!tree.is_root(v)) edge_child.push_back(v);

  std::vector<double> best;
  std::vector<double> load(static_cast<std::size_t>(n));
  const std::uint64_t masks = 1ULL << (n - 1);
  for (std::uint64_t mask = 0; mask < masks; ++mask) {
    // Fold root of each node: itself if its up-edge is cut (or it is the
    // tree root), else its parent's fold root — computable in preorder.
    std::vector<NodeId> fold_root(static_cast<std::size_t>(n));
    std::vector<bool> cut(static_cast<std::size_t>(n), false);
    cut[static_cast<std::size_t>(tree.root())] = true;
    for (int b = 0; b < n - 1; ++b)
      if (mask & (1ULL << b))
        cut[static_cast<std::size_t>(edge_child[static_cast<std::size_t>(b)])] =
            true;
    std::vector<double> fold_rate(static_cast<std::size_t>(n), 0);
    std::vector<int> fold_count(static_cast<std::size_t>(n), 0);
    for (const NodeId v : tree.preorder()) {
      fold_root[static_cast<std::size_t>(v)] =
          cut[static_cast<std::size_t>(v)]
              ? v
              : fold_root[static_cast<std::size_t>(tree.parent(v))];
      const NodeId r = fold_root[static_cast<std::size_t>(v)];
      fold_rate[static_cast<std::size_t>(r)] +=
          spontaneous[static_cast<std::size_t>(v)];
      ++fold_count[static_cast<std::size_t>(r)];
    }
    for (const NodeId v : tree.preorder()) {
      const NodeId r = fold_root[static_cast<std::size_t>(v)];
      load[static_cast<std::size_t>(v)] =
          fold_rate[static_cast<std::size_t>(r)] /
          fold_count[static_cast<std::size_t>(r)];
    }
    if (!CheckFeasible(tree, spontaneous, load, 1e-9).ok()) continue;
    if (best.empty() || LexCompareMinimax(load, best, 1e-12) < 0) best = load;
  }
  WEBWAVE_ASSERT(!best.empty(), "no feasible partition found");
  return best;
}

}  // namespace webwave
