// Tree Load Balance (TLB) — definitions, checkers, and reference solvers.
//
// Definition 1 (LB): a load assignment L is load-balanced iff its maximum
// is minimum over all feasible assignments, and the same holds recursively
// after removing the maximum component.  Equivalently: the vector of loads
// sorted in descending order is lexicographically minimal.
//
// Definition 2 (TLB): L is *tree* load balanced iff it is load-balanced
// subject to Constraint 1 (A_root = 0) and Constraint 2 (NSS: A_i >= 0).
//
// Besides structural checks, this header provides two TLB solvers that are
// algorithmically independent of WebFold, used as oracles in the test
// suite:
//
//  * SolveTlbByMaxMeanRegions — "water-filling": the fold containing the
//    root is the upward-closed region of maximum mean spontaneous rate
//    (found by Dinkelbach iteration over a tree DP); assign that mean,
//    detach the region, recurse on the hanging subtrees.
//  * SolveTlbBruteForce — enumerates all 2^(n-1) edge-cut partitions of
//    the tree into contiguous folds, keeps the feasible ones, and returns
//    the lexicographically minimax assignment (n <= 20 enforced).
#pragma once

#include <vector>

#include "tree/routing_tree.h"

namespace webwave {

// Compares two load vectors as multisets sorted in descending order.
// Returns -1 when a is lexicographically smaller (better balanced), 0 when
// equal within tolerance, +1 when larger.
int LexCompareMinimax(const std::vector<double>& a,
                      const std::vector<double>& b, double tol = 1e-9);

// Structural TLB check: L is feasible, constant on each maximal connected
// equal-load region, region means are non-increasing from root to leaves,
// and no load crosses region boundaries.  These are exactly the optimality
// conditions WebFold's folds satisfy (Lemmas 1-3); together with
// feasibility they characterize the unique TLB assignment.
bool SatisfiesTlb(const RoutingTree& tree,
                  const std::vector<double>& spontaneous,
                  const std::vector<double>& load, double tol = 1e-6);

// Reference solver via max-mean upward-closed regions (see file comment).
std::vector<double> SolveTlbByMaxMeanRegions(
    const RoutingTree& tree, const std::vector<double>& spontaneous);

// Exhaustive reference solver; requires tree.size() <= 20.
std::vector<double> SolveTlbBruteForce(const RoutingTree& tree,
                                       const std::vector<double>& spontaneous);

}  // namespace webwave
