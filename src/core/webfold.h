// WebFold — the paper's provably optimal offline algorithm (§4, Figure 3).
//
// WebFold partitions the routing tree into *folds*: contiguous regions that
// can all be assigned equal load with no load crossing fold boundaries.
// Initially every node is its own fold carrying its spontaneous rate.  A
// fold j is *foldable* into its parent fold i when j's per-node load
// exceeds i's; WebFold repeatedly folds the foldable fold with maximum
// per-node load until none remains, then assigns every node the average
// spontaneous rate of its fold.
//
// The resulting assignment satisfies (proofs in the tech report, checked
// here by tests):
//   Lemma 1   — loads are monotone non-increasing from root to leaves,
//   Lemma 2   — no load is exchanged between folds (A = 0 at fold roots),
//   Lemma 3   — no sibling sharing (A_i >= 0 everywhere),
//   Theorem 1 — the assignment is tree load balanced (TLB): it minimizes
//               the maximum load, and recursively so after removing the
//               maximum, over all feasible assignments.
//
// This implementation runs in O(n log n + f·c) where f is the number of
// folds performed and c the child-fold re-examinations they trigger, and
// records the complete folding sequence so Figure 4 can be reproduced
// verbatim.
#pragma once

#include <vector>

#include "tree/routing_tree.h"

namespace webwave {

// One final fold: the contiguous region `members` (preorder), rooted at the
// member closest to the tree root.
struct Fold {
  NodeId root = kNoNode;
  std::vector<NodeId> members;
  double rate_sum = 0;      // Σ spontaneous over members
  double capacity_sum = 0;  // Σ capacity over members (|members| when uniform)
  // rate_sum / capacity_sum: the TLB load per unit capacity.  With the
  // paper's uniform capacities this is the per-node load.
  double per_node = 0;
};

// One step of the folding sequence, for tracing (Figure 4).
struct FoldStep {
  NodeId folded_root = kNoNode;  // root of the fold that was absorbed
  NodeId into_root = kNoNode;    // root of the fold that absorbed it
  double folded_per_node = 0;    // per-node load of the absorbed fold
  double into_per_node = 0;      // per-node load of the absorbing fold, before
  double merged_per_node = 0;    // per-node load after the fold
  int merged_size = 0;           // members in the merged fold
};

struct WebFoldResult {
  // The TLB load assignment L_i (Theorem 1).
  std::vector<double> load;
  // For each node, the root node of its final fold.
  std::vector<NodeId> fold_root;
  // Final folds, ordered by the preorder position of their roots.
  std::vector<Fold> folds;
  // The folding sequence that produced them.
  std::vector<FoldStep> trace;

  // Index into `folds` for each node.
  std::vector<int> fold_index;
};

// Runs WebFold.  `spontaneous` must be non-negative with one entry per node.
WebFoldResult WebFold(const RoutingTree& tree,
                      const std::vector<double>& spontaneous);

// Capacity-weighted generalization (the paper assumes uniform capacity;
// §5.1 flags that as a simplifying assumption).  Server i has capacity
// c_i > 0; balance means lexicographically minimizing the *utilizations*
// L_i / c_i.  Folding compares fold densities Σ E / Σ c, and each member
// receives load c_i · density.  WebFold(t, E) == WebFoldWeighted(t, E, 1s).
WebFoldResult WebFoldWeighted(const RoutingTree& tree,
                              const std::vector<double>& spontaneous,
                              const std::vector<double>& capacity);

}  // namespace webwave
