// Sensitivity of the TLB assignment to demand changes.
//
// Within a fold, WebFold spreads the fold's spontaneous rate evenly, so
// for a (generic) instance whose fold structure is locally stable, adding
// δ requests/sec at node j raises the load of *every* node in j's fold by
// δ/|fold| and changes nothing elsewhere:
//
//     ∂L_i/∂E_j = 1/|F(j)|  if fold(i) == fold(j),  else 0.
//
// This is the capacity-planning view of Theorem 1: a fold is the exact
// blast radius of a demand change.  The derivative is valid until the
// perturbation changes the fold structure itself (a fold split/merge),
// which happens only at ties between neighboring folds' per-node loads.
#pragma once

#include <vector>

#include "tree/routing_tree.h"

namespace webwave {

struct TlbSensitivity {
  std::vector<int> fold_index;  // per node
  std::vector<int> fold_size;   // per fold
  std::vector<double> load;     // the TLB assignment itself

  // dL_i / dE_j at the current fold structure.
  double Derivative(NodeId i, NodeId j) const;

  // The smallest per-node-load gap between any fold and its parent fold —
  // a perturbation concentrated on one node smaller than
  // gap * min fold size cannot change the fold structure.
  double min_fold_gap = 0;
};

TlbSensitivity ComputeTlbSensitivity(const RoutingTree& tree,
                                     const std::vector<double>& spontaneous);

}  // namespace webwave
