#include "core/webfold.h"

#include <algorithm>
#include <queue>
#include <unordered_map>

#include "util/check.h"

namespace webwave {

namespace {

// Union-find over nodes; the representative of a set is the fold's root
// node (the member closest to the tree root), which is preserved by always
// merging a child fold into its parent fold.
class FoldForest {
 public:
  explicit FoldForest(int n) : link_(static_cast<std::size_t>(n)) {
    for (int i = 0; i < n; ++i) link_[static_cast<std::size_t>(i)] = i;
  }

  NodeId Find(NodeId v) {
    NodeId r = v;
    while (link_[static_cast<std::size_t>(r)] != r)
      r = link_[static_cast<std::size_t>(r)];
    while (link_[static_cast<std::size_t>(v)] != r) {
      const NodeId next = link_[static_cast<std::size_t>(v)];
      link_[static_cast<std::size_t>(v)] = r;
      v = next;
    }
    return r;
  }

  // Merges the fold rooted at `child_rep` into the fold rooted at
  // `parent_rep`; the parent's representative survives.
  void Union(NodeId child_rep, NodeId parent_rep) {
    link_[static_cast<std::size_t>(child_rep)] = parent_rep;
  }

 private:
  std::vector<NodeId> link_;
};

struct HeapEntry {
  double per_node;
  NodeId rep;
  std::uint64_t version;  // stale entries are skipped on pop

  bool operator<(const HeapEntry& other) const {
    // std::priority_queue is a max-heap on operator<; ties broken by node
    // id for determinism.
    if (per_node != other.per_node) return per_node < other.per_node;
    return rep > other.rep;
  }
};

}  // namespace

WebFoldResult WebFold(const RoutingTree& tree,
                      const std::vector<double>& spontaneous) {
  return WebFoldWeighted(
      tree, spontaneous,
      std::vector<double>(static_cast<std::size_t>(tree.size()), 1.0));
}

WebFoldResult WebFoldWeighted(const RoutingTree& tree,
                              const std::vector<double>& spontaneous,
                              const std::vector<double>& capacity) {
  const int n = tree.size();
  WEBWAVE_REQUIRE(spontaneous.size() == static_cast<std::size_t>(n),
                  "spontaneous size mismatch");
  WEBWAVE_REQUIRE(capacity.size() == static_cast<std::size_t>(n),
                  "capacity size mismatch");
  for (const double e : spontaneous)
    WEBWAVE_REQUIRE(e >= 0, "spontaneous rates must be non-negative");
  for (const double c : capacity)
    WEBWAVE_REQUIRE(c > 0, "capacities must be positive");

  FoldForest forest(n);
  std::vector<double> rate(spontaneous);  // Σ E over fold, by representative
  std::vector<double> count(capacity);    // Σ capacity over fold
  std::vector<int> members_count(static_cast<std::size_t>(n), 1);
  std::vector<std::uint64_t> version(static_cast<std::size_t>(n), 0);
  // Child folds of each fold, by representative.  May contain stale reps;
  // filtered on use.
  std::vector<std::vector<NodeId>> fold_children(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v)
    for (const NodeId c : tree.children(v))
      fold_children[static_cast<std::size_t>(v)].push_back(c);

  auto per_node = [&](NodeId rep) {
    return rate[static_cast<std::size_t>(rep)] /
           count[static_cast<std::size_t>(rep)];
  };

  std::priority_queue<HeapEntry> heap;
  for (NodeId v = 0; v < n; ++v)
    if (v != tree.root()) heap.push({per_node(v), v, 0});

  WebFoldResult result;
  while (!heap.empty()) {
    const HeapEntry top = heap.top();
    heap.pop();
    const NodeId j = top.rep;
    // Skip entries that no longer describe a live fold at this load.
    if (forest.Find(j) != j) continue;
    if (top.version != version[static_cast<std::size_t>(j)]) continue;
    if (j == tree.root()) continue;  // the root fold can never fold upward

    const NodeId i = forest.Find(tree.parent(j));
    const double avg_j = per_node(j);
    const double avg_i = per_node(i);
    if (!(avg_j > avg_i)) continue;  // not foldable now; re-pushed if it becomes so

    // Fold j into i (Fold step 2.1–2.4 of Figure 3).
    FoldStep step;
    step.folded_root = j;
    step.into_root = i;
    step.folded_per_node = avg_j;
    step.into_per_node = avg_i;
    forest.Union(j, i);
    rate[static_cast<std::size_t>(i)] += rate[static_cast<std::size_t>(j)];
    count[static_cast<std::size_t>(i)] += count[static_cast<std::size_t>(j)];
    ++version[static_cast<std::size_t>(i)];
    auto& kids_i = fold_children[static_cast<std::size_t>(i)];
    auto& kids_j = fold_children[static_cast<std::size_t>(j)];
    kids_i.insert(kids_i.end(), kids_j.begin(), kids_j.end());
    kids_j.clear();
    kids_j.shrink_to_fit();

    members_count[static_cast<std::size_t>(i)] +=
        members_count[static_cast<std::size_t>(j)];
    const double merged = per_node(i);
    step.merged_per_node = merged;
    step.merged_size = members_count[static_cast<std::size_t>(i)];
    result.trace.push_back(step);

    // The merged fold's load changed, so (a) it may itself have become
    // foldable into its parent, and (b) any of its child folds whose load
    // exceeds the new average becomes foldable — including former children
    // of j, whose parent fold's load just *dropped* from avg_j to merged.
    if (i != tree.root()) heap.push({merged, i, version[static_cast<std::size_t>(i)]});
    std::vector<NodeId> live_children;
    live_children.reserve(kids_i.size());
    for (const NodeId raw : kids_i) {
      const NodeId c = forest.Find(raw);
      if (c == i) continue;  // absorbed (e.g. the edge j->i itself)
      if (forest.Find(tree.parent(c)) != i) continue;  // stale
      live_children.push_back(c);
      if (per_node(c) > merged)
        heap.push({per_node(c), c, version[static_cast<std::size_t>(c)]});
    }
    // Compact the child list so repeated merges do not accumulate stale
    // entries quadratically.
    std::sort(live_children.begin(), live_children.end());
    live_children.erase(
        std::unique(live_children.begin(), live_children.end()),
        live_children.end());
    kids_i = std::move(live_children);
  }

  // Assemble the final folds and the TLB assignment (WebFold step 4).
  result.load.resize(static_cast<std::size_t>(n));
  result.fold_root.resize(static_cast<std::size_t>(n));
  result.fold_index.assign(static_cast<std::size_t>(n), -1);
  std::unordered_map<NodeId, int> index_of_rep;
  for (const NodeId v : tree.preorder()) {
    const NodeId rep = forest.Find(v);
    result.fold_root[static_cast<std::size_t>(v)] = rep;
    // Every member serves its capacity share of the fold density.
    result.load[static_cast<std::size_t>(v)] =
        capacity[static_cast<std::size_t>(v)] * per_node(rep);
    auto [it, inserted] =
        index_of_rep.emplace(rep, static_cast<int>(result.folds.size()));
    if (inserted) {
      Fold fold;
      fold.root = rep;
      fold.rate_sum = rate[static_cast<std::size_t>(rep)];
      fold.capacity_sum = count[static_cast<std::size_t>(rep)];
      fold.per_node = per_node(rep);
      result.folds.push_back(std::move(fold));
    }
    result.fold_index[static_cast<std::size_t>(v)] = it->second;
    result.folds[static_cast<std::size_t>(it->second)].members.push_back(v);
  }
  return result;
}

}  // namespace webwave
