// The shared per-lane diffusion kernel of WebWaveSimulator and
// BatchWebWaveSimulator.
//
// Both simulators advance load with the identical two-phase round of §5
// (decide all transfers from one snapshot, then apply them edge-atomically
// with feasibility clamps) over the identical flattened edge layout.  The
// batch form's guarantee — per-document lanes bit-identical to independent
// simulators — holds *by construction* because both call the functions in
// this header rather than keeping copies of the kernel.
#pragma once

#include <algorithm>
#include <vector>

#include "core/webwave_options.h"
#include "tree/routing_tree.h"
#include "util/rng.h"

namespace webwave {
namespace internal {

// The tree's edges flattened into parallel arrays in ascending child-id
// order — the fixed sweep order of every step — with the per-edge
// diffusion parameter resolved from the alpha policy.
struct EdgeArrays {
  std::vector<NodeId> parent;
  std::vector<NodeId> child;
  std::vector<double> alpha;

  std::size_t size() const { return child.size(); }
};

inline EdgeArrays BuildEdgeArrays(const RoutingTree& tree,
                                  const WebWaveOptions& options) {
  EdgeArrays edges;
  const std::size_t edge_count = static_cast<std::size_t>(tree.size() - 1);
  edges.parent.reserve(edge_count);
  edges.child.reserve(edge_count);
  edges.alpha.reserve(edge_count);
  for (NodeId v = 0; v < tree.size(); ++v) {
    if (tree.is_root(v)) continue;
    const NodeId p = tree.parent(v);
    const double stable =
        1.0 / (1.0 + std::max(tree.degree(p), tree.degree(v)));
    double alpha = stable;
    switch (options.alpha_policy) {
      case AlphaPolicy::kFixed:
        alpha = std::min(options.alpha, stable);
        break;
      case AlphaPolicy::kFixedUncapped:
        alpha = options.alpha;
        break;
      case AlphaPolicy::kDegree:
        break;
    }
    edges.parent.push_back(p);
    edges.child.push_back(v);
    edges.alpha.push_back(alpha);
  }
  return edges;
}

// One two-phase diffusion round over a single load lane.
//
// Phase 1 decides every edge's transfer from the same snapshot — the
// synchronous rounds of Figure 5, where steps (2.1)-(2.2) read the
// estimates gathered at the end of the previous period.  A transfer on
// edge (p, c) is positive when load moves down (p -> c): the parent
// delegates using its true load and its estimate of the child, capped by
// the observed A_c; the child relinquishes upward symmetrically, capped
// by its own served rate.  Diffusion equalizes utilization (load with
// uniform capacities); the transfer scale min(c_p, c_c) reduces to the
// paper's load difference when capacities are uniform.
//
// Phase 2 applies the transfers atomically per edge, clamping against the
// evolving state so that L >= 0 and A >= 0 hold exactly even when a node
// participates in several transfers within one round.
//
// `rng` is consumed (one Bernoulli per edge) only in asynchronous mode;
// `delta` is caller-provided scratch of edges.size() entries.
inline void StepLane(const EdgeArrays& edges, const double* capacity,
                     const WebWaveOptions& options, Rng& rng, double* served,
                     double* forwarded, const double* est_down,
                     const double* est_up, double* delta) {
  const std::size_t edge_count = edges.size();
  for (std::size_t k = 0; k < edge_count; ++k) {
    if (options.asynchronous &&
        !rng.NextBernoulli(options.activation_probability)) {
      delta[k] = 0;
      continue;
    }
    const std::size_t p = static_cast<std::size_t>(edges.parent[k]);
    const std::size_t c = static_cast<std::size_t>(edges.child[k]);
    const double cp = capacity[p];
    const double cc = capacity[c];
    const double up = served[p] / cp;
    const double uc = served[c] / cc;
    const double parent_view = est_down[k] / cc;
    const double child_view = est_up[k] / cp;
    const double scale = std::min(cp, cc);
    double d = 0;
    if (up > parent_view) {
      d = std::min(edges.alpha[k] * (up - parent_view) * scale, forwarded[c]);
    } else if (uc > child_view) {
      d = -std::min(edges.alpha[k] * (uc - child_view) * scale, served[c]);
    }
    delta[k] = d;
  }

  for (std::size_t k = 0; k < edge_count; ++k) {
    double d = delta[k];
    if (d == 0) continue;
    const std::size_t p = static_cast<std::size_t>(edges.parent[k]);
    const std::size_t c = static_cast<std::size_t>(edges.child[k]);
    if (d > 0) {
      d = std::min({d, forwarded[c], served[p]});
      if (d <= 0) continue;
      served[p] -= d;
      served[c] += d;
      forwarded[c] -= d;
    } else {
      const double up_amt = std::min(-d, served[c]);
      if (up_amt <= 0) continue;
      served[c] -= up_amt;
      served[p] += up_amt;
      forwarded[c] += up_amt;
    }
  }
}

// Projects a lane's served vector onto the feasible set of (possibly new)
// spontaneous rates — the demand-churn counterpart of StepLane, shared by
// WebWaveSimulator::UpdateSpontaneous/ApplyDemandEvents and the batch
// simulator's per-lane churn path so the two stay equivalent by
// construction.
//
// In postorder, every node may keep at most the flow that now arrives at
// it (its own spontaneous rate plus what its children still forward); the
// shortfall travels up and the root absorbs whatever remains unclaimed (it
// is the authoritative copy, Constraint 1: A_root = 0).  This models
// servers instantly noticing their request streams thinned.  On return the
// lane satisfies flow conservation, L >= 0 and A >= 0 exactly.
inline void ProjectLane(const RoutingTree& tree, const double* spontaneous,
                        double* served, double* forwarded) {
  for (const NodeId v : tree.postorder()) {
    double arrive = spontaneous[static_cast<std::size_t>(v)];
    for (const NodeId c : tree.children(v))
      arrive += forwarded[static_cast<std::size_t>(c)];
    double serve = std::min(served[static_cast<std::size_t>(v)], arrive);
    if (tree.is_root(v)) serve = arrive;
    served[static_cast<std::size_t>(v)] = serve;
    forwarded[static_cast<std::size_t>(v)] = arrive - serve;
  }
}

}  // namespace internal
}  // namespace webwave
