// The shared per-lane diffusion kernel of WebWaveSimulator and
// BatchWebWaveSimulator.
//
// Both simulators advance load with the identical two-phase round of §5
// (decide all transfers from one snapshot, then apply them edge-atomically
// with feasibility clamps) over the identical flattened edge layout.  The
// batch form's guarantee — per-document lanes bit-identical to independent
// simulators — holds *by construction* because both call the functions in
// this header rather than keeping copies of the kernel.
//
// The kernel is *width-generic*: StepLaneBlock advances `width` lanes in
// one sweep over the edge list, with every per-lane quantity stored
// interleaved ([edge or node][width] — lane b of the block at slot
// index·width + b).  The single-document simulator calls it with width 1
// (where the layout degenerates to the plain flat arrays); the batch
// simulator calls it with width = its document block size, so the shared
// edge metadata (parent, child, alpha) is streamed once per *block*
// instead of once per document.  Each lane's arithmetic is independent and
// executed in the same IEEE order at every width, so per-lane results are
// bit-identical across widths — the invariant the batch property tests
// assert against independent simulators.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/webwave_options.h"
#include "tree/routing_tree.h"
#include "util/rng.h"

namespace webwave {
namespace internal {

// Relative utilization imbalances at or below this are treated as
// balanced: no transfer is scheduled for them.  Without the dead band the
// protocol never reaches a floating-point fixed point — near convergence
// it keeps applying transfers smaller than 1 ulp of the endpoint loads
// (which therefore never move) but comparable to 1 ulp of the smaller
// forwarded rates, which drift one ulp per step forever, slowly eroding
// exact flow conservation and keeping every lane permanently "changed".
// Cutting transfers ~4 decimal orders above load ulps stops the leak and
// makes convergence literal: once every edge is within 1e-12 relative of
// balance, a step changes nothing, the batch engine's dirty-lane tracking
// sees the lane clean, and incremental snapshots skip it.  1e-12 is ~1e6×
// below every tolerance the tests and the paper's convergence metric use.
inline constexpr double kImbalanceDeadband = 1e-12;

// The tree's edges flattened into parallel arrays in ascending child-id
// order — the fixed sweep order of every step — with the per-edge
// diffusion parameter resolved from the alpha policy.
struct EdgeArrays {
  std::vector<NodeId> parent;
  std::vector<NodeId> child;
  std::vector<double> alpha;
  // The options the alphas were resolved from — lets a simulator reject a
  // shared build whose diffusion parameters do not match its own options.
  AlphaPolicy alpha_policy = AlphaPolicy::kDegree;
  double alpha_value = 0;

  std::size_t size() const { return child.size(); }

  bool MatchesOptions(const WebWaveOptions& options) const {
    if (alpha_policy != options.alpha_policy) return false;
    return alpha_policy == AlphaPolicy::kDegree ||
           alpha_value == options.alpha;
  }

  // True iff these arrays describe exactly `tree`'s edges — the guard the
  // simulator constructors apply to a caller-supplied shared build, so a
  // build for a *different* same-sized tree cannot silently diffuse over
  // the wrong topology.  O(edges), far cheaper than rebuilding.
  bool MatchesTree(const RoutingTree& tree) const {
    if (size() != static_cast<std::size_t>(tree.size() - 1)) return false;
    for (std::size_t k = 0; k < size(); ++k) {
      const NodeId c = child[k];
      if (c < 0 || c >= tree.size() || tree.is_root(c) ||
          tree.parent(c) != parent[k])
        return false;
    }
    return true;
  }
};

// Read-only edge structure shared between simulators: the arrays depend
// only on (tree, alpha policy), so one build can back a batch engine, its
// per-document reference simulators and any closed-loop re-derivations at
// once instead of each constructor re-flattening the same tree.
using SharedEdgeArrays = std::shared_ptr<const EdgeArrays>;

inline EdgeArrays BuildEdgeArrays(const RoutingTree& tree,
                                  const WebWaveOptions& options) {
  EdgeArrays edges;
  edges.alpha_policy = options.alpha_policy;
  edges.alpha_value = options.alpha;
  const std::size_t edge_count = static_cast<std::size_t>(tree.size() - 1);
  edges.parent.reserve(edge_count);
  edges.child.reserve(edge_count);
  edges.alpha.reserve(edge_count);
  for (NodeId v = 0; v < tree.size(); ++v) {
    if (tree.is_root(v)) continue;
    const NodeId p = tree.parent(v);
    const double stable =
        1.0 / (1.0 + std::max(tree.degree(p), tree.degree(v)));
    double alpha = stable;
    switch (options.alpha_policy) {
      case AlphaPolicy::kFixed:
        alpha = std::min(options.alpha, stable);
        break;
      case AlphaPolicy::kFixedUncapped:
        alpha = options.alpha;
        break;
      case AlphaPolicy::kDegree:
        break;
    }
    edges.parent.push_back(p);
    edges.child.push_back(v);
    edges.alpha.push_back(alpha);
  }
  return edges;
}

inline SharedEdgeArrays BuildSharedEdgeArrays(const RoutingTree& tree,
                                              const WebWaveOptions& options) {
  return std::make_shared<const EdgeArrays>(BuildEdgeArrays(tree, options));
}

// One two-phase diffusion round over a block of `width` load lanes.
//
// Phase 1 decides every edge's transfer from the same snapshot — the
// synchronous rounds of Figure 5, where steps (2.1)-(2.2) read the
// estimates gathered at the end of the previous period.  A transfer on
// edge (p, c) is positive when load moves down (p -> c): the parent
// delegates using its true load and its estimate of the child, capped by
// the observed A_c; the child relinquishes upward symmetrically, capped
// by its own served rate.  Diffusion equalizes utilization (load with
// uniform capacities); the transfer scale min(c_p, c_c) reduces to the
// paper's load difference when capacities are uniform.
//
// Phase 2 applies the transfers atomically per edge, clamping against the
// evolving state so that L >= 0 and A >= 0 hold exactly even when a node
// participates in several transfers within one round.
//
// Estimates are read from `est_plane`, the gossiped load snapshot indexed
// by *node* (not by edge): the parent's view of child c is
// est_plane[c·width + b], the child's view of parent p is
// est_plane[p·width + b].  One n-sized plane per lane replaces the two
// edge-indexed estimate arrays the simulators used to materialize — the
// same values, read through the edge endpoints instead of pre-gathered.
//
// `rng` points at `width` per-lane generators; lane b consumes one
// Bernoulli per edge (ascending edge order) in asynchronous mode only —
// the identical draw sequence an independent simulator of that lane makes.
// `delta` is caller-provided scratch of edges.size()·width entries.
//
// `changed`, when non-null, points at `width` per-lane flags; a lane's
// flag is OR-ed to 1 iff any of its served/forwarded values actually
// changed (a transfer below 1 ulp of its endpoint leaves the value — and
// the flag — untouched).  This is what feeds the batch engine's dirty-lane
// set: clean means bit-identical state, not merely "no events".
inline void StepLaneBlock(const EdgeArrays& edges, const double* capacity,
                          const WebWaveOptions& options, Rng* rng, int width,
                          double* served, double* forwarded,
                          const double* est_plane, double* delta,
                          std::uint8_t* changed = nullptr) {
  const std::size_t edge_count = edges.size();
  const std::size_t w = static_cast<std::size_t>(width);
  for (std::size_t k = 0; k < edge_count; ++k) {
    const std::size_t p = static_cast<std::size_t>(edges.parent[k]);
    const std::size_t c = static_cast<std::size_t>(edges.child[k]);
    const double cp = capacity[p];
    const double cc = capacity[c];
    const double scale = std::min(cp, cc);
    const double alpha = edges.alpha[k];
    const double* sp = served + p * w;
    const double* sc = served + c * w;
    const double* fc = forwarded + c * w;
    const double* ep = est_plane + p * w;
    const double* ec = est_plane + c * w;
    double* dk = delta + k * w;
    for (std::size_t b = 0; b < w; ++b) {
      if (options.asynchronous &&
          !rng[b].NextBernoulli(options.activation_probability)) {
        dk[b] = 0;
        continue;
      }
      const double up = sp[b] / cp;
      const double uc = sc[b] / cc;
      const double parent_view = ec[b] / cc;
      const double child_view = ep[b] / cp;
      double d = 0;
      if (up - parent_view > kImbalanceDeadband * up) {
        d = std::min(alpha * (up - parent_view) * scale, fc[b]);
      } else if (uc - child_view > kImbalanceDeadband * uc) {
        d = -std::min(alpha * (uc - child_view) * scale, sc[b]);
      }
      dk[b] = d;
    }
  }

  for (std::size_t k = 0; k < edge_count; ++k) {
    const std::size_t p = static_cast<std::size_t>(edges.parent[k]);
    const std::size_t c = static_cast<std::size_t>(edges.child[k]);
    double* sp = served + p * w;
    double* sc = served + c * w;
    double* fc = forwarded + c * w;
    const double* dk = delta + k * w;
    for (std::size_t b = 0; b < w; ++b) {
      double d = dk[b];
      if (d == 0) continue;
      if (d > 0) {
        d = std::min({d, fc[b], sp[b]});
        if (d <= 0) continue;
        const double np = sp[b] - d;
        const double nc = sc[b] + d;
        const double nf = fc[b] - d;
        if (changed != nullptr)
          changed[b] |= static_cast<std::uint8_t>(np != sp[b] || nc != sc[b] ||
                                                  nf != fc[b]);
        sp[b] = np;
        sc[b] = nc;
        fc[b] = nf;
      } else {
        const double up_amt = std::min(-d, sc[b]);
        if (up_amt <= 0) continue;
        const double nc = sc[b] - up_amt;
        const double np = sp[b] + up_amt;
        const double nf = fc[b] + up_amt;
        if (changed != nullptr)
          changed[b] |= static_cast<std::uint8_t>(nc != sc[b] || np != sp[b] ||
                                                  nf != fc[b]);
        sc[b] = nc;
        sp[b] = np;
        fc[b] = nf;
      }
    }
  }
}

// Projects a lane's served vector onto the feasible set of (possibly new)
// spontaneous rates — the demand-churn counterpart of StepLaneBlock,
// shared by WebWaveSimulator::UpdateSpontaneous/ApplyDemandEvents and the
// batch simulator's per-lane churn path so the two stay equivalent by
// construction.
//
// In postorder, every node may keep at most the flow that now arrives at
// it (its own spontaneous rate plus what its children still forward); the
// shortfall travels up and the root absorbs whatever remains unclaimed (it
// is the authoritative copy, Constraint 1: A_root = 0).  This models
// servers instantly noticing their request streams thinned.  On return the
// lane satisfies flow conservation, L >= 0 and A >= 0 exactly.
//
// The width-generic form mirrors StepLaneBlock's layout: arrays are
// [node][width] interleaved, and `select` (width flags, null = all)
// picks which lanes of the block to project.  One postorder sweep
// projects every selected lane — under churn that touches most of a
// block this reads each cache line once instead of once per lane, which
// is what keeps ApplyDemandEvents' cost flat in the block width.  Each
// lane's arithmetic is independent and ordered exactly as the width-1
// form, so projections agree bit for bit across layouts.
inline void ProjectLaneBlock(const RoutingTree& tree,
                             const double* spontaneous, double* served,
                             double* forwarded, int width,
                             const std::uint8_t* select) {
  const std::size_t w = static_cast<std::size_t>(width);
  for (const NodeId v : tree.postorder()) {
    const std::size_t row = static_cast<std::size_t>(v) * w;
    const bool root = tree.is_root(v);
    for (std::size_t b = 0; b < w; ++b) {
      if (select != nullptr && select[b] == 0) continue;
      double arrive = spontaneous[row + b];
      for (const NodeId c : tree.children(v))
        arrive += forwarded[static_cast<std::size_t>(c) * w + b];
      double serve = std::min(served[row + b], arrive);
      if (root) serve = arrive;
      served[row + b] = serve;
      forwarded[row + b] = arrive - serve;
    }
  }
}

inline void ProjectLane(const RoutingTree& tree, const double* spontaneous,
                        double* served, double* forwarded) {
  ProjectLaneBlock(tree, spontaneous, served, forwarded, 1, nullptr);
}

}  // namespace internal
}  // namespace webwave
