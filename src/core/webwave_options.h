// Configuration shared by the WebWave rate-level simulators (single-tree,
// batched catalog) and their common step kernel.
#pragma once

#include <cstdint>
#include <vector>

namespace webwave {

// How the diffusion parameter α_ij of an edge is chosen.  The paper's
// Figure 5 notes "other values of α_i are possible"; the standard choice
// guaranteeing Cybenko's convergence conditions (1 − Σ_j α_ij > 0) is
// 1/(1 + max degree of the endpoints).
enum class AlphaPolicy {
  // α_ij = min(alpha, 1/(1 + max degree)): the requested value, capped so
  // Cybenko's stability condition always holds.
  kFixed,
  // α_ij = alpha exactly, even when it violates the stability condition —
  // used by the ablation bench to demonstrate why the condition matters.
  kFixedUncapped,
  // α_ij = 1 / (1 + max(deg(i), deg(j))) (the default).
  kDegree,
};

// Where the load sits before the protocol starts.
enum class InitialLoad {
  kAllAtRoot,    // cold start: no caches yet, the home server serves all
  kSelfService,  // every node serves exactly its spontaneous requests
};

struct WebWaveOptions {
  AlphaPolicy alpha_policy = AlphaPolicy::kDegree;
  double alpha = 0.25;        // used when alpha_policy == kFixed
  InitialLoad initial_load = InitialLoad::kAllAtRoot;
  int gossip_period = 1;      // steps between neighbor-estimate refreshes
  int gossip_delay = 0;       // estimates lag the true load by this many steps
  bool asynchronous = false;  // edges activate independently at random
  double activation_probability = 0.5;  // per-edge, in asynchronous mode
  // Per-node service capacities.  Empty reproduces the paper's uniform-
  // capacity assumption.  When set, diffusion equalizes *utilizations*
  // L_i / c_i and converges to the WebFoldWeighted assignment.
  std::vector<double> capacities;
  // Worker threads for the batched simulator's per-lane sweeps (ignored by
  // the single-document simulator).  0 picks one per hardware thread; the
  // pool is clamped to the document count.  Document blocks are
  // partitioned statically and share no mutable state between gossip
  // refreshes, so results are bit-identical at every thread count.
  int threads = 1;
  // Document block width of the batched simulator: lanes are stored and
  // stepped in blocks of this many documents interleaved per node/edge
  // slot, so one sweep of the shared edge metadata advances lane_block
  // lanes (the last block is ragged when the catalog size is not a
  // multiple).  Purely a memory-layout knob — per-lane results are
  // bit-identical at every width.  8 won the micro-benchmark sweep
  // (BENCH_step_blocked.json); 1 reproduces the document-major layout.
  int lane_block = 8;
  std::uint64_t seed = 1;
};

// One demand change: document `doc`'s spontaneous request rate at `node`
// becomes `rate` (absolute, not a delta).  Batches of events are the unit
// of churn: ApplyDemandEvents applies a whole batch and re-projects each
// affected lane once, exactly as UpdateSpontaneous would with the merged
// rate vector.  The single-document simulator requires doc == 0.
struct DemandEvent {
  std::int32_t doc = 0;
  std::int32_t node = 0;
  double rate = 0;
};

}  // namespace webwave
