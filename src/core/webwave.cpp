#include "core/webwave.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "core/load_model.h"
#include "stats/summary.h"
#include "util/check.h"

namespace webwave {

WebWaveSimulator::WebWaveSimulator(const RoutingTree& tree,
                                   std::vector<double> spontaneous,
                                   WebWaveOptions options,
                                   internal::SharedEdgeArrays edges)
    : tree_(tree),
      spontaneous_(std::move(spontaneous)),
      options_(options),
      rng_(options.seed) {
  const int n = tree_.size();
  WEBWAVE_REQUIRE(spontaneous_.size() == static_cast<std::size_t>(n),
                  "spontaneous size mismatch");
  for (const double e : spontaneous_)
    WEBWAVE_REQUIRE(e >= 0, "spontaneous rates must be non-negative");
  WEBWAVE_REQUIRE(options_.gossip_period >= 1, "gossip period must be >= 1");
  WEBWAVE_REQUIRE(options_.gossip_delay >= 0, "gossip delay must be >= 0");
  if (options_.alpha_policy == AlphaPolicy::kFixed ||
      options_.alpha_policy == AlphaPolicy::kFixedUncapped)
    WEBWAVE_REQUIRE(options_.alpha > 0 && options_.alpha <= 0.5,
                    "fixed alpha must be in (0, 0.5]");
  if (options_.capacities.empty()) {
    capacity_.assign(static_cast<std::size_t>(n), 1.0);
  } else {
    WEBWAVE_REQUIRE(
        options_.capacities.size() == static_cast<std::size_t>(n),
        "capacities size mismatch");
    for (const double c : options_.capacities)
      WEBWAVE_REQUIRE(c > 0, "capacities must be positive");
    capacity_ = options_.capacities;
  }

  // Initial condition.
  served_.assign(static_cast<std::size_t>(n), 0.0);
  switch (options_.initial_load) {
    case InitialLoad::kAllAtRoot:
      served_[static_cast<std::size_t>(tree_.root())] =
          TotalRate(spontaneous_);
      break;
    case InitialLoad::kSelfService:
      served_ = spontaneous_;
      break;
  }
  forwarded_ = ForwardedRates(tree_, spontaneous_, served_);

  // Flatten the edges into parallel arrays, ascending child id, with their
  // diffusion parameters — the fixed sweep order every Step() follows —
  // unless the caller already holds a shared build for this tree.
  if (edges != nullptr) {
    WEBWAVE_REQUIRE(edges->MatchesTree(tree_),
                    "shared edge arrays do not match the tree");
    WEBWAVE_REQUIRE(edges->MatchesOptions(options_),
                    "shared edge arrays were built under a different "
                    "alpha policy");
    edges_ = std::move(edges);
  } else {
    edges_ = internal::BuildSharedEdgeArrays(tree_, options_);
  }
  // Instantaneous gossip (the default, period 1 / delay 0) needs no
  // estimate storage at all: a refresh would copy the served vector into
  // the plane at the end of every step, so during phase 1 of the next
  // step the plane is bitwise the current served vector — the kernel
  // reads served directly instead (see Step).
  if (!InstantGossip()) est_plane_.assign(static_cast<std::size_t>(n), 0.0);
  delta_.assign(edges_->size(), 0.0);

  if (options_.gossip_delay > 0) {
    history_.assign(
        (static_cast<std::size_t>(options_.gossip_delay) + 1) * served_.size(),
        0.0);
    std::copy(served_.begin(), served_.end(), history_.begin());
  }
  RefreshEstimates();
}

bool WebWaveSimulator::InstantGossip() const {
  return options_.gossip_period == 1 && options_.gossip_delay == 0;
}

const double* WebWaveSimulator::DelayedServedView() const {
  if (options_.gossip_delay == 0) return served_.data();
  const std::size_t slots =
      static_cast<std::size_t>(options_.gossip_delay) + 1;
  const std::size_t lag = std::min(
      static_cast<std::size_t>(options_.gossip_delay), history_filled_ - 1);
  return history_.data() +
         ((history_head_ + slots - lag) % slots) * served_.size();
}

void WebWaveSimulator::PushHistory() {
  if (options_.gossip_delay == 0) return;
  const std::size_t slots =
      static_cast<std::size_t>(options_.gossip_delay) + 1;
  history_head_ = (history_head_ + 1) % slots;
  history_filled_ = std::min(history_filled_ + 1, slots);
  std::copy(served_.begin(), served_.end(),
            history_.begin() + history_head_ * served_.size());
}

void WebWaveSimulator::RefreshEstimates() {
  // Gossip delivers the load vector as it was gossip_delay steps ago — one
  // straight copy into the node-indexed estimate plane (the step kernel
  // reads the edge endpoints out of the plane directly).  Instantaneous
  // gossip keeps no plane: the kernel reads the live served vector.
  if (InstantGossip()) return;
  const double* view = DelayedServedView();
  std::copy(view, view + served_.size(), est_plane_.begin());
}

void WebWaveSimulator::Step() {
  // The two-phase round of Figure 5 (see webwave_kernel.h): decide every
  // transfer from one snapshot, then apply them edge-atomically.  Width-1
  // call of the same blocked kernel the batch engine sweeps.  Phase 1
  // reads estimates before phase 2 writes anything, so under
  // instantaneous gossip the served vector itself serves as the estimate
  // plane — bitwise the same values a per-step refresh would have copied.
  internal::StepLaneBlock(*edges_, capacity_.data(), options_, &rng_, 1,
                          served_.data(), forwarded_.data(),
                          InstantGossip() ? served_.data() : est_plane_.data(),
                          delta_.data());

  ++steps_;
  PushHistory();
  if (steps_ % options_.gossip_period == 0) RefreshEstimates();
}

void WebWaveSimulator::UpdateSpontaneous(std::vector<double> spontaneous) {
  WEBWAVE_REQUIRE(
      spontaneous.size() == static_cast<std::size_t>(tree_.size()),
      "spontaneous size mismatch");
  for (const double e : spontaneous)
    WEBWAVE_REQUIRE(e >= 0, "spontaneous rates must be non-negative");
  spontaneous_ = std::move(spontaneous);
  ReprojectAfterChurn();
}

void WebWaveSimulator::ApplyDemandEvents(Span<DemandEvent> events) {
  if (events.empty()) return;
  // Validate the whole batch before mutating anything: a throw must leave
  // the simulator exactly as it was (the strong guarantee
  // UpdateSpontaneous gets from validating its full vector up front).
  for (const DemandEvent& e : events) {
    WEBWAVE_REQUIRE(e.doc == 0,
                    "single-document simulator: event doc must be 0");
    WEBWAVE_REQUIRE(e.node >= 0 && e.node < tree_.size(),
                    "demand event node out of range");
    WEBWAVE_REQUIRE(e.rate >= 0, "spontaneous rates must be non-negative");
  }
  for (const DemandEvent& e : events)
    spontaneous_[static_cast<std::size_t>(e.node)] = e.rate;
  ReprojectAfterChurn();
}

void WebWaveSimulator::ReprojectAfterChurn() {
  // Project the served vector onto the new feasible set (ProjectLane,
  // shared with the batch engine): each node may serve at most what now
  // arrives at it; the shortfall travels up and the root absorbs whatever
  // remains unclaimed (it is the authoritative copy).  This models servers
  // instantly noticing their streams thinned.
  internal::ProjectLane(tree_, spontaneous_.data(), served_.data(),
                        forwarded_.data());
  // History must restart so stale pre-churn vectors are never gossiped,
  // and the estimates are refreshed immediately: with gossip_period > 1
  // the first post-churn steps would otherwise diffuse against pre-churn
  // estimates, moving load on imbalances that no longer exist.
  if (options_.gossip_delay > 0) {
    history_head_ = 0;
    history_filled_ = 1;
    std::copy(served_.begin(), served_.end(), history_.begin());
  }
  RefreshEstimates();
}

double WebWaveSimulator::DistanceTo(const std::vector<double>& target) const {
  return EuclideanDistance(served_, target);
}

std::vector<double> WebWaveSimulator::RunUntil(
    const std::vector<double>& target, double tol, int max_steps) {
  std::vector<double> trajectory = {DistanceTo(target)};
  for (int s = 0; s < max_steps && trajectory.back() > tol; ++s) {
    Step();
    trajectory.push_back(DistanceTo(target));
  }
  return trajectory;
}

void WebWaveSimulator::CheckInvariants(double tol) const {
  const double total = TotalRate(spontaneous_);
  WEBWAVE_ASSERT(std::abs(TotalRate(served_) - total) <=
                     tol * (1 + std::abs(total)),
                 "flow conservation violated");
  const std::vector<double> expect =
      ForwardedRates(tree_, spontaneous_, served_);
  for (std::size_t i = 0; i < served_.size(); ++i) {
    WEBWAVE_ASSERT(served_[i] >= -tol, "negative served rate");
    WEBWAVE_ASSERT(forwarded_[i] >= -tol, "NSS violated (negative A)");
    WEBWAVE_ASSERT(std::abs(forwarded_[i] - expect[i]) <= tol * (1 + total),
                   "tracked A diverged from flow-conservation A");
  }
}

}  // namespace webwave
