#include "core/webwave.h"

#include <algorithm>
#include <cmath>

#include "core/load_model.h"
#include "stats/summary.h"
#include "util/check.h"

namespace webwave {

WebWaveSimulator::WebWaveSimulator(const RoutingTree& tree,
                                   std::vector<double> spontaneous,
                                   WebWaveOptions options)
    : tree_(tree),
      spontaneous_(std::move(spontaneous)),
      options_(options),
      rng_(options.seed) {
  const int n = tree_.size();
  WEBWAVE_REQUIRE(spontaneous_.size() == static_cast<std::size_t>(n),
                  "spontaneous size mismatch");
  for (const double e : spontaneous_)
    WEBWAVE_REQUIRE(e >= 0, "spontaneous rates must be non-negative");
  WEBWAVE_REQUIRE(options_.gossip_period >= 1, "gossip period must be >= 1");
  WEBWAVE_REQUIRE(options_.gossip_delay >= 0, "gossip delay must be >= 0");
  if (options_.alpha_policy == AlphaPolicy::kFixed ||
      options_.alpha_policy == AlphaPolicy::kFixedUncapped)
    WEBWAVE_REQUIRE(options_.alpha > 0 && options_.alpha <= 0.5,
                    "fixed alpha must be in (0, 0.5]");
  if (options_.capacities.empty()) {
    capacity_.assign(static_cast<std::size_t>(n), 1.0);
  } else {
    WEBWAVE_REQUIRE(
        options_.capacities.size() == static_cast<std::size_t>(n),
        "capacities size mismatch");
    for (const double c : options_.capacities)
      WEBWAVE_REQUIRE(c > 0, "capacities must be positive");
    capacity_ = options_.capacities;
  }

  // Initial condition.
  served_.assign(static_cast<std::size_t>(n), 0.0);
  switch (options_.initial_load) {
    case InitialLoad::kAllAtRoot:
      served_[static_cast<std::size_t>(tree_.root())] =
          TotalRate(spontaneous_);
      break;
    case InitialLoad::kSelfService:
      served_ = spontaneous_;
      break;
  }
  forwarded_ = ForwardedRates(tree_, spontaneous_, served_);

  // Edges, parent side first, with their diffusion parameter.
  edges_.reserve(static_cast<std::size_t>(n - 1));
  for (NodeId v = 0; v < n; ++v) {
    if (tree_.is_root(v)) continue;
    Edge e;
    e.parent = tree_.parent(v);
    e.child = v;
    const double stable =
        1.0 /
        (1.0 + std::max(tree_.degree(e.parent), tree_.degree(e.child)));
    switch (options_.alpha_policy) {
      case AlphaPolicy::kFixed:
        e.alpha = std::min(options_.alpha, stable);
        break;
      case AlphaPolicy::kFixedUncapped:
        e.alpha = options_.alpha;
        break;
      case AlphaPolicy::kDegree:
        e.alpha = stable;
        break;
    }
    edges_.push_back(e);
  }

  // Every node starts with a fresh view of its neighbors.
  estimates_.assign(static_cast<std::size_t>(n), {});
  for (const Edge& e : edges_) {
    estimates_[static_cast<std::size_t>(e.parent)].push_back({e.child, 0});
    estimates_[static_cast<std::size_t>(e.child)].push_back({e.parent, 0});
  }
  history_.push_back(served_);
  RefreshEstimates();
}

double WebWaveSimulator::Estimate(NodeId a, NodeId b) const {
  for (const auto& [node, load] : estimates_[static_cast<std::size_t>(a)])
    if (node == b) return load;
  WEBWAVE_ASSERT(false, "estimate requested for a non-neighbor");
  return 0;
}

void WebWaveSimulator::RefreshEstimates() {
  // Gossip delivers the load vector as it was gossip_delay steps ago.
  const std::size_t lag =
      std::min<std::size_t>(static_cast<std::size_t>(options_.gossip_delay),
                            history_.size() - 1);
  const std::vector<double>& view = history_[history_.size() - 1 - lag];
  for (auto& per_node : estimates_)
    for (auto& [neighbor, load] : per_node)
      load = view[static_cast<std::size_t>(neighbor)];
}

void WebWaveSimulator::Step() {
  // Phase 1: every server decides its transfers from the same snapshot —
  // this models the synchronous rounds of Figure 5, where step (2.1)-(2.2)
  // read the estimates gathered at the end of the previous period.
  //
  // A transfer on edge (p, c) is positive when load moves down (p -> c).
  // The *parent* decides downward shifts using its true load and its
  // estimate of the child, capped by the observed A_c (an exactly known
  // local quantity: it is the rate of requests arriving from c).  The
  // *child* decides upward shifts symmetrically, capped by its own served
  // rate.
  std::vector<double> delta(edges_.size(), 0.0);
  for (std::size_t k = 0; k < edges_.size(); ++k) {
    const Edge& e = edges_[k];
    if (options_.asynchronous &&
        !rng_.NextBernoulli(options_.activation_probability))
      continue;
    const double cp = capacity_[static_cast<std::size_t>(e.parent)];
    const double cc = capacity_[static_cast<std::size_t>(e.child)];
    // Diffusion equalizes utilization (load with uniform capacities).  The
    // transfer scale min(c_p, c_c) reduces to the paper's load difference
    // when capacities are uniform.
    const double up = served_[static_cast<std::size_t>(e.parent)] / cp;
    const double uc = served_[static_cast<std::size_t>(e.child)] / cc;
    const double parent_view = Estimate(e.parent, e.child) / cc;
    const double child_view = Estimate(e.child, e.parent) / cp;
    const double scale = std::min(cp, cc);
    double d = 0;
    if (up > parent_view) {
      // Parent believes the child is less utilized: delegate future
      // requests to it (cap: the child can only absorb its own subtree's
      // flow).
      d = std::min(e.alpha * (up - parent_view) * scale,
                   forwarded_[static_cast<std::size_t>(e.child)]);
    } else if (uc > child_view) {
      // Child believes the parent is less utilized: relinquish requests
      // upward (cap: it can give up at most what it currently serves).
      d = -std::min(e.alpha * (uc - child_view) * scale,
                    served_[static_cast<std::size_t>(e.child)]);
    }
    delta[k] = d;
  }

  // Phase 2: apply transfers atomically per edge, clamping against the
  // evolving state so that L >= 0 and A >= 0 hold exactly even when a node
  // participates in several transfers within one round.
  for (std::size_t k = 0; k < edges_.size(); ++k) {
    const Edge& e = edges_[k];
    double d = delta[k];
    if (d == 0) continue;
    const std::size_t p = static_cast<std::size_t>(e.parent);
    const std::size_t c = static_cast<std::size_t>(e.child);
    if (d > 0) {
      d = std::min({d, forwarded_[c], served_[p]});
      if (d <= 0) continue;
      served_[p] -= d;
      served_[c] += d;
      forwarded_[c] -= d;
    } else {
      double up = std::min(-d, served_[c]);
      if (up <= 0) continue;
      served_[c] -= up;
      served_[p] += up;
      forwarded_[c] += up;
    }
  }

  ++steps_;
  history_.push_back(served_);
  const std::size_t keep =
      static_cast<std::size_t>(options_.gossip_delay) + 1;
  while (history_.size() > keep) history_.pop_front();
  if (steps_ % options_.gossip_period == 0) RefreshEstimates();
}

void WebWaveSimulator::UpdateSpontaneous(std::vector<double> spontaneous) {
  WEBWAVE_REQUIRE(
      spontaneous.size() == static_cast<std::size_t>(tree_.size()),
      "spontaneous size mismatch");
  for (const double e : spontaneous)
    WEBWAVE_REQUIRE(e >= 0, "spontaneous rates must be non-negative");
  spontaneous_ = std::move(spontaneous);

  // Project the served vector onto the new feasible set: each node may
  // serve at most what now arrives at it; the shortfall travels up and the
  // root absorbs whatever remains unclaimed (it is the authoritative
  // copy).  This models servers instantly noticing their streams thinned.
  for (const NodeId v : tree_.postorder()) {
    double arrive = spontaneous_[static_cast<std::size_t>(v)];
    for (const NodeId c : tree_.children(v))
      arrive += forwarded_[static_cast<std::size_t>(c)];
    double serve = std::min(served_[static_cast<std::size_t>(v)], arrive);
    if (tree_.is_root(v)) serve = arrive;  // Constraint 1: A_root = 0
    served_[static_cast<std::size_t>(v)] = serve;
    forwarded_[static_cast<std::size_t>(v)] = arrive - serve;
  }
  // Estimates survive the change (gossip will refresh them); history must
  // restart so stale pre-churn vectors are not gossiped.
  history_.clear();
  history_.push_back(served_);
}

double WebWaveSimulator::DistanceTo(const std::vector<double>& target) const {
  return EuclideanDistance(served_, target);
}

std::vector<double> WebWaveSimulator::RunUntil(
    const std::vector<double>& target, double tol, int max_steps) {
  std::vector<double> trajectory = {DistanceTo(target)};
  for (int s = 0; s < max_steps && trajectory.back() > tol; ++s) {
    Step();
    trajectory.push_back(DistanceTo(target));
  }
  return trajectory;
}

void WebWaveSimulator::CheckInvariants(double tol) const {
  const double total = TotalRate(spontaneous_);
  WEBWAVE_ASSERT(std::abs(TotalRate(served_) - total) <=
                     tol * (1 + std::abs(total)),
                 "flow conservation violated");
  const std::vector<double> expect =
      ForwardedRates(tree_, spontaneous_, served_);
  for (std::size_t i = 0; i < served_.size(); ++i) {
    WEBWAVE_ASSERT(served_[i] >= -tol, "negative served rate");
    WEBWAVE_ASSERT(forwarded_[i] >= -tol, "NSS violated (negative A)");
    WEBWAVE_ASSERT(std::abs(forwarded_[i] - expect[i]) <= tol * (1 + total),
                   "tracked A diverged from flow-conservation A");
  }
}

}  // namespace webwave
