#include "core/sensitivity.h"

#include <algorithm>
#include <limits>

#include "core/webfold.h"
#include "util/check.h"

namespace webwave {

double TlbSensitivity::Derivative(NodeId i, NodeId j) const {
  WEBWAVE_REQUIRE(i >= 0 && i < static_cast<NodeId>(fold_index.size()) &&
                      j >= 0 && j < static_cast<NodeId>(fold_index.size()),
                  "node out of range");
  const int fi = fold_index[static_cast<std::size_t>(i)];
  const int fj = fold_index[static_cast<std::size_t>(j)];
  if (fi != fj) return 0.0;
  return 1.0 / fold_size[static_cast<std::size_t>(fj)];
}

TlbSensitivity ComputeTlbSensitivity(const RoutingTree& tree,
                                     const std::vector<double>& spontaneous) {
  const WebFoldResult r = WebFold(tree, spontaneous);
  TlbSensitivity s;
  s.fold_index = r.fold_index;
  s.load = r.load;
  s.fold_size.reserve(r.folds.size());
  for (const Fold& f : r.folds)
    s.fold_size.push_back(static_cast<int>(f.members.size()));

  // The gap between each fold and its parent fold (fold roots other than
  // the tree root have a parent in another fold; foldability stopped
  // because parent per-node load >= child per-node load).
  double gap = std::numeric_limits<double>::infinity();
  for (const Fold& f : r.folds) {
    if (f.root == tree.root()) continue;
    const NodeId parent = tree.parent(f.root);
    const int pf = r.fold_index[static_cast<std::size_t>(parent)];
    gap = std::min(gap, r.folds[static_cast<std::size_t>(pf)].per_node -
                            f.per_node);
  }
  s.min_fold_gap = r.folds.size() <= 1 ? 0.0 : gap;
  return s;
}

}  // namespace webwave
