#include "core/load_model.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace webwave {

std::vector<double> ForwardedRates(const RoutingTree& tree,
                                   const std::vector<double>& spontaneous,
                                   const std::vector<double>& served) {
  const std::size_t n = static_cast<std::size_t>(tree.size());
  WEBWAVE_REQUIRE(spontaneous.size() == n, "spontaneous size mismatch");
  WEBWAVE_REQUIRE(served.size() == n, "served size mismatch");
  std::vector<double> forwarded(n, 0);
  for (const NodeId v : tree.postorder()) {
    double in = spontaneous[static_cast<std::size_t>(v)];
    for (const NodeId c : tree.children(v))
      in += forwarded[static_cast<std::size_t>(c)];
    forwarded[static_cast<std::size_t>(v)] =
        in - served[static_cast<std::size_t>(v)];
  }
  return forwarded;
}

FeasibilityReport CheckFeasible(const RoutingTree& tree,
                                const std::vector<double>& spontaneous,
                                const std::vector<double>& served,
                                double tol) {
  const std::vector<double> forwarded =
      ForwardedRates(tree, spontaneous, served);
  FeasibilityReport report;
  report.served_nonnegative = true;
  report.nss = true;
  double worst = 0;
  for (std::size_t i = 0; i < served.size(); ++i) {
    if (served[i] < -tol) report.served_nonnegative = false;
    worst = std::min(worst, served[i]);
    if (forwarded[i] < -tol) report.nss = false;
    worst = std::min(worst, forwarded[i]);
  }
  const double root_a = forwarded[static_cast<std::size_t>(tree.root())];
  report.root_forwards_nothing = std::abs(root_a) <= tol;
  worst = std::min(worst, -std::abs(root_a));
  report.worst_violation = worst;
  return report;
}

std::vector<double> GleAssignment(int node_count, double total_rate) {
  WEBWAVE_REQUIRE(node_count > 0, "need at least one node");
  return std::vector<double>(static_cast<std::size_t>(node_count),
                             total_rate / node_count);
}

bool GleIsFeasible(const RoutingTree& tree,
                   const std::vector<double>& spontaneous, double tol) {
  const double total = TotalRate(spontaneous);
  return CheckFeasible(tree, spontaneous, GleAssignment(tree.size(), total),
                       tol)
      .ok();
}

bool IsUniform(const std::vector<double>& load, double tol) {
  WEBWAVE_REQUIRE(!load.empty(), "empty load vector");
  const double mean = TotalRate(load) / static_cast<double>(load.size());
  return std::all_of(load.begin(), load.end(), [&](double v) {
    return std::abs(v - mean) <= tol;
  });
}

double TotalRate(const std::vector<double>& rates) {
  double sum = 0;
  for (const double r : rates) sum += r;
  return sum;
}

}  // namespace webwave
