#include "core/webwave_batch.h"

#include <algorithm>
#include <cmath>
#include <thread>

#include "core/load_model.h"
#include "stats/summary.h"
#include "util/check.h"

namespace webwave {

BatchWebWaveSimulator::BatchWebWaveSimulator(
    const RoutingTree& tree, std::vector<std::vector<double>> spontaneous,
    WebWaveOptions options)
    : tree_(tree),
      options_(options),
      docs_(static_cast<int>(spontaneous.size())) {
  const int n = tree_.size();
  WEBWAVE_REQUIRE(docs_ >= 1, "batch needs at least one document");
  WEBWAVE_REQUIRE(options_.gossip_period >= 1, "gossip period must be >= 1");
  WEBWAVE_REQUIRE(options_.gossip_delay >= 0, "gossip delay must be >= 0");
  if (options_.alpha_policy == AlphaPolicy::kFixed ||
      options_.alpha_policy == AlphaPolicy::kFixedUncapped)
    WEBWAVE_REQUIRE(options_.alpha > 0 && options_.alpha <= 0.5,
                    "fixed alpha must be in (0, 0.5]");
  if (options_.capacities.empty()) {
    capacity_.assign(static_cast<std::size_t>(n), 1.0);
  } else {
    WEBWAVE_REQUIRE(options_.capacities.size() == static_cast<std::size_t>(n),
                    "capacities size mismatch");
    for (const double c : options_.capacities)
      WEBWAVE_REQUIRE(c > 0, "capacities must be positive");
    capacity_ = options_.capacities;
  }

  // Shared edge structure, identical to WebWaveSimulator's by
  // construction: both come from the same builder.
  edges_ = internal::BuildEdgeArrays(tree_, options_);

  // The lane sweeps run on a persistent pool; per-edge scratch is
  // per-worker so concurrent lanes never share it.  A lane is the unit of
  // work, so more workers than documents would only idle and inflate the
  // scratch — clamp to the catalog size.
  const int requested =
      options_.threads > 0
          ? options_.threads
          : static_cast<int>(
                std::max(1u, std::thread::hardware_concurrency()));
  pool_ = std::make_unique<WorkerPool>(std::min(requested, docs_));
  delta_.assign(static_cast<std::size_t>(pool_->thread_count()) *
                    edges_.size(),
                0.0);

  // Load lanes.
  const std::size_t lanes = static_cast<std::size_t>(docs_);
  const std::size_t nn = static_cast<std::size_t>(n);
  spontaneous_.assign(lanes * nn, 0.0);
  served_.assign(lanes * nn, 0.0);
  forwarded_.assign(lanes * nn, 0.0);
  for (int d = 0; d < docs_; ++d) {
    auto& spont = spontaneous[static_cast<std::size_t>(d)];
    WEBWAVE_REQUIRE(spont.size() == nn, "spontaneous size mismatch");
    for (const double e : spont)
      WEBWAVE_REQUIRE(e >= 0, "spontaneous rates must be non-negative");
    const std::size_t base = LaneBase(d);
    std::copy(spont.begin(), spont.end(), spontaneous_.begin() + base);
    switch (options_.initial_load) {
      case InitialLoad::kAllAtRoot:
        served_[base + static_cast<std::size_t>(tree_.root())] =
            TotalRate(spont);
        break;
      case InitialLoad::kSelfService:
        std::copy(spont.begin(), spont.end(), served_.begin() + base);
        break;
    }
    const std::vector<double> fwd = ForwardedRates(
        tree_, spont,
        std::vector<double>(served_.begin() + base,
                            served_.begin() + base + nn));
    std::copy(fwd.begin(), fwd.end(), forwarded_.begin() + base);
    // Release the caller's lane as soon as it is flattened: at 10⁶ nodes
    // × 64 documents the input otherwise holds ~0.5 GB alive for the
    // whole construction.
    spont = std::vector<double>();
  }

  est_down_.assign(lanes * edges_.size(), 0.0);
  est_up_.assign(lanes * edges_.size(), 0.0);
  lane_head_.assign(lanes, 0);
  lane_filled_.assign(lanes, 1);
  if (options_.gossip_delay > 0) {
    history_.assign(
        (static_cast<std::size_t>(options_.gossip_delay) + 1) * lanes * nn,
        0.0);
    std::copy(served_.begin(), served_.end(), history_.begin());
  }
  for (int d = 0; d < docs_; ++d) RefreshLaneEstimates(d);

  lane_rng_.reserve(lanes);
  for (int d = 0; d < docs_; ++d)
    lane_rng_.emplace_back(options_.seed + static_cast<std::uint64_t>(d));
  churned_.assign(lanes, 0);
}

std::size_t BatchWebWaveSimulator::LaneBase(int d) const {
  WEBWAVE_REQUIRE(d >= 0 && d < docs_, "document lane out of range");
  return static_cast<std::size_t>(d) * static_cast<std::size_t>(tree_.size());
}

std::size_t BatchWebWaveSimulator::LaneEdgeBase(int d) const {
  return static_cast<std::size_t>(d) * edges_.size();
}

std::vector<double> BatchWebWaveSimulator::ServedLane(int d) const {
  const std::size_t base = LaneBase(d);
  return std::vector<double>(
      served_.begin() + base,
      served_.begin() + base + static_cast<std::size_t>(tree_.size()));
}

std::vector<double> BatchWebWaveSimulator::SpontaneousLane(int d) const {
  const std::size_t base = LaneBase(d);
  return std::vector<double>(
      spontaneous_.begin() + base,
      spontaneous_.begin() + base + static_cast<std::size_t>(tree_.size()));
}

const double* BatchWebWaveSimulator::DelayedLaneView(int d) const {
  if (options_.gossip_delay == 0) return served_.data() + LaneBase(d);
  const std::size_t slots = static_cast<std::size_t>(options_.gossip_delay) + 1;
  const std::size_t head = lane_head_[static_cast<std::size_t>(d)];
  const std::size_t lag =
      std::min(static_cast<std::size_t>(options_.gossip_delay),
               static_cast<std::size_t>(
                   lane_filled_[static_cast<std::size_t>(d)]) -
                   1);
  return history_.data() + ((head + slots - lag) % slots) * served_.size() +
         LaneBase(d);
}

void BatchWebWaveSimulator::RefreshLaneEstimates(int d) {
  // Gossip delivers the lane's load vector as it was gossip_delay steps
  // ago (the live lane when the delay is zero).
  const double* lane = DelayedLaneView(d);
  const std::size_t edge_count = edges_.size();
  double* down = est_down_.data() + LaneEdgeBase(d);
  double* up = est_up_.data() + LaneEdgeBase(d);
  for (std::size_t k = 0; k < edge_count; ++k) {
    down[k] = lane[static_cast<std::size_t>(edges_.child[k])];
    up[k] = lane[static_cast<std::size_t>(edges_.parent[k])];
  }
}

void BatchWebWaveSimulator::PushLaneHistory(int d) {
  const std::size_t slots = static_cast<std::size_t>(options_.gossip_delay) + 1;
  const std::size_t lane = static_cast<std::size_t>(d);
  lane_head_[lane] = static_cast<std::uint32_t>(
      (lane_head_[lane] + 1) % slots);
  lane_filled_[lane] = static_cast<std::uint32_t>(
      std::min<std::size_t>(lane_filled_[lane] + 1, slots));
  const std::size_t base = LaneBase(d);
  const std::size_t nn = static_cast<std::size_t>(tree_.size());
  std::copy(served_.begin() + base, served_.begin() + base + nn,
            history_.begin() + lane_head_[lane] * served_.size() + base);
}

void BatchWebWaveSimulator::Step() {
  // Per lane, the exact two-phase round of WebWaveSimulator::Step() (the
  // same kernel, see webwave_kernel.h) followed by that lane's gossip
  // bookkeeping.  Everything a lane touches — load slices, estimates, RNG,
  // history ring position — is its own, so the lane sweep parallelizes
  // with no synchronization beyond the pool barrier, and the static
  // partition keeps results bit-identical to the serial order.
  const std::size_t edge_count = edges_.size();
  const bool push_history = options_.gossip_delay > 0;
  const bool refresh = (steps_ + 1) % options_.gossip_period == 0;
  pool_->ParallelFor(
      static_cast<std::size_t>(docs_),
      [&](int worker, std::size_t begin, std::size_t end) {
        double* delta =
            delta_.data() + static_cast<std::size_t>(worker) * edge_count;
        for (std::size_t d = begin; d < end; ++d) {
          const int doc = static_cast<int>(d);
          internal::StepLane(edges_, capacity_.data(), options_,
                             lane_rng_[d], served_.data() + LaneBase(doc),
                             forwarded_.data() + LaneBase(doc),
                             est_down_.data() + LaneEdgeBase(doc),
                             est_up_.data() + LaneEdgeBase(doc), delta);
          if (push_history) PushLaneHistory(doc);
          if (refresh) RefreshLaneEstimates(doc);
        }
      });
  ++steps_;
}

void BatchWebWaveSimulator::ApplyDemandEvents(Span<DemandEvent> events) {
  if (events.empty()) return;
  // Validate the whole batch before mutating anything (a throw must leave
  // every lane untouched), then do the serial rate writes; the per-lane
  // projection below only touches lane-owned state, so it parallelizes.
  for (const DemandEvent& e : events) {
    WEBWAVE_REQUIRE(e.doc >= 0 && e.doc < docs_,
                    "demand event document out of range");
    WEBWAVE_REQUIRE(e.node >= 0 && e.node < tree_.size(),
                    "demand event node out of range");
    WEBWAVE_REQUIRE(e.rate >= 0, "spontaneous rates must be non-negative");
  }
  std::fill(churned_.begin(), churned_.end(), 0);
  for (const DemandEvent& e : events) {
    spontaneous_[LaneBase(e.doc) + static_cast<std::size_t>(e.node)] = e.rate;
    churned_[static_cast<std::size_t>(e.doc)] = 1;
  }
  std::vector<int> affected;
  for (int d = 0; d < docs_; ++d)
    if (churned_[static_cast<std::size_t>(d)]) affected.push_back(d);

  const std::size_t nn = static_cast<std::size_t>(tree_.size());
  pool_->ParallelFor(
      affected.size(), [&](int, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          const int d = affected[i];
          const std::size_t base = LaneBase(d);
          // Identical to WebWaveSimulator::ReprojectAfterChurn, lane for
          // lane: project, restart the lane's gossip history, refresh its
          // estimates.
          internal::ProjectLane(tree_, spontaneous_.data() + base,
                                served_.data() + base,
                                forwarded_.data() + base);
          if (options_.gossip_delay > 0) {
            lane_head_[static_cast<std::size_t>(d)] = 0;
            lane_filled_[static_cast<std::size_t>(d)] = 1;
            std::copy(served_.begin() + base, served_.begin() + base + nn,
                      history_.begin() + base);
          }
          RefreshLaneEstimates(d);
        }
      });
}

std::vector<double> BatchWebWaveSimulator::NodeLoads() const {
  const std::size_t nn = static_cast<std::size_t>(tree_.size());
  std::vector<double> total(nn, 0.0);
  for (int d = 0; d < docs_; ++d) {
    const double* lane = served_.data() + LaneBase(d);
    for (std::size_t v = 0; v < nn; ++v) total[v] += lane[v];
  }
  return total;
}

void BatchWebWaveSimulator::ExportQuotas(
    double min_rate,
    const std::function<void(NodeId, std::int32_t, double, double)>& sink)
    const {
  WEBWAVE_REQUIRE(min_rate >= 0, "min_rate must be non-negative");
  const std::size_t nn = static_cast<std::size_t>(tree_.size());
  // Hoist the lane base pointers: the sweep is node-major over
  // document-major storage (the CSR consumer's order), so the inner loop
  // strides by a lane — at least keep it free of per-cell bounds checks.
  std::vector<const double*> served(static_cast<std::size_t>(docs_));
  std::vector<const double*> forwarded(static_cast<std::size_t>(docs_));
  for (int d = 0; d < docs_; ++d) {
    served[static_cast<std::size_t>(d)] = served_.data() + LaneBase(d);
    forwarded[static_cast<std::size_t>(d)] = forwarded_.data() + LaneBase(d);
  }
  for (std::size_t v = 0; v < nn; ++v)
    for (int d = 0; d < docs_; ++d) {
      const double rate = served[static_cast<std::size_t>(d)][v];
      if (rate > min_rate)
        sink(static_cast<NodeId>(v), static_cast<std::int32_t>(d), rate,
             forwarded[static_cast<std::size_t>(d)][v]);
    }
}

double BatchWebWaveSimulator::MaxNodeLoad() const {
  const std::vector<double> total = NodeLoads();
  double mx = 0;
  for (const double l : total) mx = std::max(mx, l);
  return mx;
}

double BatchWebWaveSimulator::DistanceTo(
    int d, const std::vector<double>& target) const {
  return EuclideanDistance(ServedLane(d), target);
}

void BatchWebWaveSimulator::CheckInvariants(double tol) const {
  for (int d = 0; d < docs_; ++d) {
    const std::size_t base = LaneBase(d);
    const std::size_t nn = static_cast<std::size_t>(tree_.size());
    const std::vector<double> spont(spontaneous_.begin() + base,
                                    spontaneous_.begin() + base + nn);
    const std::vector<double> served = ServedLane(d);
    const double total = TotalRate(spont);
    WEBWAVE_ASSERT(std::abs(TotalRate(served) - total) <=
                       tol * (1 + std::abs(total)),
                   "flow conservation violated in a document lane");
    const std::vector<double> expect = ForwardedRates(tree_, spont, served);
    for (std::size_t v = 0; v < nn; ++v) {
      WEBWAVE_ASSERT(served[v] >= -tol, "negative served rate in a lane");
      WEBWAVE_ASSERT(forwarded_[base + v] >= -tol,
                     "NSS violated (negative A) in a lane");
      WEBWAVE_ASSERT(std::abs(forwarded_[base + v] - expect[v]) <=
                         tol * (1 + total),
                     "tracked A diverged from flow-conservation A");
    }
  }
}

}  // namespace webwave
