#include "core/webwave_batch.h"

#include <algorithm>
#include <cmath>

#include "core/load_model.h"
#include "stats/summary.h"
#include "util/check.h"

namespace webwave {

BatchWebWaveSimulator::BatchWebWaveSimulator(
    const RoutingTree& tree, std::vector<std::vector<double>> spontaneous,
    WebWaveOptions options)
    : tree_(tree),
      options_(options),
      docs_(static_cast<int>(spontaneous.size())) {
  const int n = tree_.size();
  WEBWAVE_REQUIRE(docs_ >= 1, "batch needs at least one document");
  WEBWAVE_REQUIRE(options_.gossip_period >= 1, "gossip period must be >= 1");
  WEBWAVE_REQUIRE(options_.gossip_delay >= 0, "gossip delay must be >= 0");
  if (options_.alpha_policy == AlphaPolicy::kFixed ||
      options_.alpha_policy == AlphaPolicy::kFixedUncapped)
    WEBWAVE_REQUIRE(options_.alpha > 0 && options_.alpha <= 0.5,
                    "fixed alpha must be in (0, 0.5]");
  if (options_.capacities.empty()) {
    capacity_.assign(static_cast<std::size_t>(n), 1.0);
  } else {
    WEBWAVE_REQUIRE(options_.capacities.size() == static_cast<std::size_t>(n),
                    "capacities size mismatch");
    for (const double c : options_.capacities)
      WEBWAVE_REQUIRE(c > 0, "capacities must be positive");
    capacity_ = options_.capacities;
  }

  // Shared edge structure, identical to WebWaveSimulator's by
  // construction: both come from the same builder.
  edges_ = internal::BuildEdgeArrays(tree_, options_);
  delta_.assign(edges_.size(), 0.0);

  // Load lanes.
  const std::size_t lanes = static_cast<std::size_t>(docs_);
  const std::size_t nn = static_cast<std::size_t>(n);
  spontaneous_.assign(lanes * nn, 0.0);
  served_.assign(lanes * nn, 0.0);
  forwarded_.assign(lanes * nn, 0.0);
  for (int d = 0; d < docs_; ++d) {
    auto& spont = spontaneous[static_cast<std::size_t>(d)];
    WEBWAVE_REQUIRE(spont.size() == nn, "spontaneous size mismatch");
    for (const double e : spont)
      WEBWAVE_REQUIRE(e >= 0, "spontaneous rates must be non-negative");
    const std::size_t base = LaneBase(d);
    std::copy(spont.begin(), spont.end(), spontaneous_.begin() + base);
    switch (options_.initial_load) {
      case InitialLoad::kAllAtRoot:
        served_[base + static_cast<std::size_t>(tree_.root())] =
            TotalRate(spont);
        break;
      case InitialLoad::kSelfService:
        std::copy(spont.begin(), spont.end(), served_.begin() + base);
        break;
    }
    const std::vector<double> fwd = ForwardedRates(
        tree_, spont,
        std::vector<double>(served_.begin() + base,
                            served_.begin() + base + nn));
    std::copy(fwd.begin(), fwd.end(), forwarded_.begin() + base);
    // Release the caller's lane as soon as it is flattened: at 10⁶ nodes
    // × 64 documents the input otherwise holds ~0.5 GB alive for the
    // whole construction.
    spont = std::vector<double>();
  }

  est_down_.assign(lanes * edges_.size(), 0.0);
  est_up_.assign(lanes * edges_.size(), 0.0);
  if (options_.gossip_delay > 0) {
    history_.assign(
        (static_cast<std::size_t>(options_.gossip_delay) + 1) * lanes * nn,
        0.0);
    std::copy(served_.begin(), served_.end(), history_.begin());
  }
  RefreshEstimates();

  lane_rng_.reserve(lanes);
  for (int d = 0; d < docs_; ++d)
    lane_rng_.emplace_back(options_.seed + static_cast<std::uint64_t>(d));
}

std::size_t BatchWebWaveSimulator::LaneBase(int d) const {
  WEBWAVE_REQUIRE(d >= 0 && d < docs_, "document lane out of range");
  return static_cast<std::size_t>(d) * static_cast<std::size_t>(tree_.size());
}

std::vector<double> BatchWebWaveSimulator::ServedLane(int d) const {
  const std::size_t base = LaneBase(d);
  return std::vector<double>(
      served_.begin() + base,
      served_.begin() + base + static_cast<std::size_t>(tree_.size()));
}

void BatchWebWaveSimulator::RefreshEstimates() {
  // Gossip delivers each lane's load vector as it was gossip_delay steps
  // ago (the live lane when the delay is zero).
  const double* view = served_.data();
  if (options_.gossip_delay > 0) {
    const std::size_t slots =
        static_cast<std::size_t>(options_.gossip_delay) + 1;
    const std::size_t lag = std::min(
        static_cast<std::size_t>(options_.gossip_delay), history_filled_ - 1);
    view = history_.data() +
           ((history_head_ + slots - lag) % slots) * served_.size();
  }
  const std::size_t edge_count = edges_.size();
  for (int d = 0; d < docs_; ++d) {
    const double* lane = view + LaneBase(d);
    double* down = est_down_.data() + static_cast<std::size_t>(d) * edge_count;
    double* up = est_up_.data() + static_cast<std::size_t>(d) * edge_count;
    for (std::size_t k = 0; k < edge_count; ++k) {
      down[k] = lane[static_cast<std::size_t>(edges_.child[k])];
      up[k] = lane[static_cast<std::size_t>(edges_.parent[k])];
    }
  }
}

void BatchWebWaveSimulator::Step() {
  // Per lane, the exact two-phase round of WebWaveSimulator::Step() (the
  // same kernel, see webwave_kernel.h): the shared edge index arrays stay
  // hot across lanes while each lane's load slices stream through cache
  // once.
  const std::size_t edge_count = edges_.size();
  for (int d = 0; d < docs_; ++d) {
    internal::StepLane(edges_, capacity_.data(), options_,
                       lane_rng_[static_cast<std::size_t>(d)],
                       served_.data() + LaneBase(d),
                       forwarded_.data() + LaneBase(d),
                       est_down_.data() + static_cast<std::size_t>(d) * edge_count,
                       est_up_.data() + static_cast<std::size_t>(d) * edge_count,
                       delta_.data());
  }

  ++steps_;
  if (options_.gossip_delay > 0) {
    const std::size_t slots =
        static_cast<std::size_t>(options_.gossip_delay) + 1;
    history_head_ = (history_head_ + 1) % slots;
    history_filled_ = std::min(history_filled_ + 1, slots);
    std::copy(served_.begin(), served_.end(),
              history_.begin() + history_head_ * served_.size());
  }
  if (steps_ % options_.gossip_period == 0) RefreshEstimates();
}

std::vector<double> BatchWebWaveSimulator::NodeLoads() const {
  const std::size_t nn = static_cast<std::size_t>(tree_.size());
  std::vector<double> total(nn, 0.0);
  for (int d = 0; d < docs_; ++d) {
    const double* lane = served_.data() + LaneBase(d);
    for (std::size_t v = 0; v < nn; ++v) total[v] += lane[v];
  }
  return total;
}

double BatchWebWaveSimulator::MaxNodeLoad() const {
  const std::vector<double> total = NodeLoads();
  double mx = 0;
  for (const double l : total) mx = std::max(mx, l);
  return mx;
}

double BatchWebWaveSimulator::DistanceTo(
    int d, const std::vector<double>& target) const {
  return EuclideanDistance(ServedLane(d), target);
}

void BatchWebWaveSimulator::CheckInvariants(double tol) const {
  for (int d = 0; d < docs_; ++d) {
    const std::size_t base = LaneBase(d);
    const std::size_t nn = static_cast<std::size_t>(tree_.size());
    const std::vector<double> spont(spontaneous_.begin() + base,
                                    spontaneous_.begin() + base + nn);
    const std::vector<double> served = ServedLane(d);
    const double total = TotalRate(spont);
    WEBWAVE_ASSERT(std::abs(TotalRate(served) - total) <=
                       tol * (1 + std::abs(total)),
                   "flow conservation violated in a document lane");
    const std::vector<double> expect = ForwardedRates(tree_, spont, served);
    for (std::size_t v = 0; v < nn; ++v) {
      WEBWAVE_ASSERT(served[v] >= -tol, "negative served rate in a lane");
      WEBWAVE_ASSERT(forwarded_[base + v] >= -tol,
                     "NSS violated (negative A) in a lane");
      WEBWAVE_ASSERT(std::abs(forwarded_[base + v] - expect[v]) <=
                         tol * (1 + total),
                     "tracked A diverged from flow-conservation A");
    }
  }
}

}  // namespace webwave
