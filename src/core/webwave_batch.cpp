#include "core/webwave_batch.h"

#include <algorithm>
#include <cmath>
#include <thread>
#include <utility>

#include "core/load_model.h"
#include "stats/summary.h"
#include "util/check.h"

namespace webwave {

BatchWebWaveSimulator::BatchWebWaveSimulator(
    const RoutingTree& tree, std::vector<std::vector<double>> spontaneous,
    WebWaveOptions options, internal::SharedEdgeArrays edges)
    : tree_(tree),
      options_(options),
      docs_(static_cast<int>(spontaneous.size())) {
  const int n = tree_.size();
  WEBWAVE_REQUIRE(docs_ >= 1, "batch needs at least one document");
  WEBWAVE_REQUIRE(options_.gossip_period >= 1, "gossip period must be >= 1");
  WEBWAVE_REQUIRE(options_.gossip_delay >= 0, "gossip delay must be >= 0");
  WEBWAVE_REQUIRE(options_.lane_block >= 1, "lane block must be >= 1");
  if (options_.alpha_policy == AlphaPolicy::kFixed ||
      options_.alpha_policy == AlphaPolicy::kFixedUncapped)
    WEBWAVE_REQUIRE(options_.alpha > 0 && options_.alpha <= 0.5,
                    "fixed alpha must be in (0, 0.5]");
  block_ = std::min(options_.lane_block, docs_);
  blocks_ = (docs_ + block_ - 1) / block_;
  if (options_.capacities.empty()) {
    capacity_.assign(static_cast<std::size_t>(n), 1.0);
  } else {
    WEBWAVE_REQUIRE(options_.capacities.size() == static_cast<std::size_t>(n),
                    "capacities size mismatch");
    for (const double c : options_.capacities)
      WEBWAVE_REQUIRE(c > 0, "capacities must be positive");
    capacity_ = options_.capacities;
  }

  // Shared edge structure, identical to WebWaveSimulator's by
  // construction: both come from the same builder (or literally the same
  // shared build when the caller passes one).
  if (edges != nullptr) {
    WEBWAVE_REQUIRE(edges->MatchesTree(tree_),
                    "shared edge arrays do not match the tree");
    WEBWAVE_REQUIRE(edges->MatchesOptions(options_),
                    "shared edge arrays were built under a different "
                    "alpha policy");
    edges_ = std::move(edges);
  } else {
    edges_ = internal::BuildSharedEdgeArrays(tree_, options_);
  }

  // The block sweeps run on a persistent pool; per-edge scratch is
  // per-worker so concurrent blocks never share it.  The pool is clamped
  // to the catalog size (the historical contract of thread_count()); a
  // block is the unit of work, so at most blocks_ workers are ever busy.
  const int requested =
      options_.threads > 0
          ? options_.threads
          : static_cast<int>(
                std::max(1u, std::thread::hardware_concurrency()));
  pool_ = std::make_unique<WorkerPool>(std::min(requested, docs_));
  delta_.resize(static_cast<std::size_t>(pool_->thread_count()));

  // Blocked load lanes: scatter each caller lane into its block columns.
  const std::size_t lanes = static_cast<std::size_t>(docs_);
  const std::size_t nn = static_cast<std::size_t>(n);
  spontaneous_.assign(lanes * nn, 0.0);
  served_.assign(lanes * nn, 0.0);
  forwarded_.assign(lanes * nn, 0.0);
  for (int d = 0; d < docs_; ++d) {
    auto& spont = spontaneous[static_cast<std::size_t>(d)];
    WEBWAVE_REQUIRE(spont.size() == nn, "spontaneous size mismatch");
    for (const double e : spont)
      WEBWAVE_REQUIRE(e >= 0, "spontaneous rates must be non-negative");
    const std::size_t base = LaneIndex(d, 0);
    const std::size_t w =
        static_cast<std::size_t>(BlockWidth(BlockOf(d)));
    for (std::size_t v = 0; v < nn; ++v) spontaneous_[base + v * w] = spont[v];
    std::vector<double> init_served(nn, 0.0);
    switch (options_.initial_load) {
      case InitialLoad::kAllAtRoot:
        init_served[static_cast<std::size_t>(tree_.root())] =
            TotalRate(spont);
        break;
      case InitialLoad::kSelfService:
        init_served = spont;
        break;
    }
    const std::vector<double> fwd = ForwardedRates(tree_, spont, init_served);
    for (std::size_t v = 0; v < nn; ++v) {
      served_[base + v * w] = init_served[v];
      forwarded_[base + v * w] = fwd[v];
    }
    // Release the caller's lane as soon as it is flattened: at 10⁶ nodes
    // × 64 documents the input otherwise holds ~0.5 GB alive for the
    // whole construction.
    spont = std::vector<double>();
  }

  // Gossip plane arena: every block's front plane (and, with delayed
  // gossip, its ring slots) starts as a copy of the block's served state.
  // Instantaneous gossip (period 1 / delay 0, the default) keeps no arena
  // at all — the kernel reads the served block directly, which is bitwise
  // what a per-step refresh would have installed.
  const std::size_t spb = static_cast<std::size_t>(slots_per_block());
  if (!InstantGossip()) {
    gossip_arena_.assign(spb * lanes * nn, 0.0);
    plane_off_.resize(static_cast<std::size_t>(blocks_) * spb);
  }
  for (int g = 0; g < blocks_ && !InstantGossip(); ++g) {
    const std::size_t block_doubles =
        static_cast<std::size_t>(BlockWidth(g)) * nn;
    const std::size_t arena_base = spb * BlockNodeBase(g);
    for (std::size_t s = 0; s < spb; ++s)
      plane_off_[static_cast<std::size_t>(g) * spb + s] =
          arena_base + s * block_doubles;
    std::copy(served_.begin() +
                  static_cast<std::ptrdiff_t>(BlockNodeBase(g)),
              served_.begin() +
                  static_cast<std::ptrdiff_t>(BlockNodeBase(g) + block_doubles),
              gossip_arena_.begin() +
                  static_cast<std::ptrdiff_t>(plane_off_[
                      static_cast<std::size_t>(g) * spb + spb - 1]));
    if (options_.gossip_delay > 0)
      std::copy(served_.begin() +
                    static_cast<std::ptrdiff_t>(BlockNodeBase(g)),
                served_.begin() + static_cast<std::ptrdiff_t>(
                                      BlockNodeBase(g) + block_doubles),
                gossip_arena_.begin() +
                    static_cast<std::ptrdiff_t>(plane_off_[
                        static_cast<std::size_t>(g) * spb]));
  }
  block_head_.assign(static_cast<std::size_t>(blocks_), 0);
  lane_filled_.assign(lanes, 1);

  lane_rng_.reserve(lanes);
  for (int d = 0; d < docs_; ++d)
    lane_rng_.emplace_back(options_.seed + static_cast<std::uint64_t>(d));
  dirty_.assign(lanes, 1);  // a fresh engine has never been snapshotted
  churned_.assign(lanes, 0);
}

int BatchWebWaveSimulator::BlockWidth(int g) const {
  return std::min(block_, docs_ - g * block_);
}

std::size_t BatchWebWaveSimulator::BlockNodeBase(int g) const {
  // Blocks before g are all full (width block_), so their lanes occupy
  // exactly g·block_ node-indexed rows.
  return static_cast<std::size_t>(g) * static_cast<std::size_t>(block_) *
         static_cast<std::size_t>(tree_.size());
}

std::size_t BatchWebWaveSimulator::LaneIndex(int d, NodeId v) const {
  WEBWAVE_REQUIRE(d >= 0 && d < docs_, "document lane out of range");
  const int g = BlockOf(d);
  return BlockNodeBase(g) +
         static_cast<std::size_t>(v) * static_cast<std::size_t>(BlockWidth(g)) +
         static_cast<std::size_t>(LaneInBlock(d));
}

double* BatchWebWaveSimulator::PlaneAt(int g, int slot) {
  return gossip_arena_.data() +
         plane_off_[static_cast<std::size_t>(g) *
                        static_cast<std::size_t>(slots_per_block()) +
                    static_cast<std::size_t>(slot)];
}

const double* BatchWebWaveSimulator::PlaneAt(int g, int slot) const {
  return gossip_arena_.data() +
         plane_off_[static_cast<std::size_t>(g) *
                        static_cast<std::size_t>(slots_per_block()) +
                    static_cast<std::size_t>(slot)];
}

std::vector<double> BatchWebWaveSimulator::GatherLane(
    const std::vector<double>& blocked, int d) const {
  const std::size_t nn = static_cast<std::size_t>(tree_.size());
  const std::size_t base = LaneIndex(d, 0);
  const std::size_t w = static_cast<std::size_t>(BlockWidth(BlockOf(d)));
  std::vector<double> lane(nn);
  for (std::size_t v = 0; v < nn; ++v) lane[v] = blocked[base + v * w];
  return lane;
}

std::vector<double> BatchWebWaveSimulator::ServedLane(int d) const {
  return GatherLane(served_, d);
}

std::vector<double> BatchWebWaveSimulator::ForwardedLane(int d) const {
  return GatherLane(forwarded_, d);
}

std::vector<double> BatchWebWaveSimulator::SpontaneousLane(int d) const {
  return GatherLane(spontaneous_, d);
}

void BatchWebWaveSimulator::PushBlockHistory(int g) {
  // Advance the block's ring position and snapshot the whole block's
  // served state into the new head slot — one contiguous copy for all W
  // lanes (the per-step cost of delayed gossip).
  const std::size_t slots = static_cast<std::size_t>(ring_slots());
  block_head_[static_cast<std::size_t>(g)] = static_cast<std::uint32_t>(
      (block_head_[static_cast<std::size_t>(g)] + 1) % slots);
  const std::size_t block_doubles =
      static_cast<std::size_t>(BlockWidth(g)) *
      static_cast<std::size_t>(tree_.size());
  const std::size_t base = BlockNodeBase(g);
  std::copy(served_.begin() + static_cast<std::ptrdiff_t>(base),
            served_.begin() + static_cast<std::ptrdiff_t>(base + block_doubles),
            PlaneAt(g, static_cast<int>(
                           block_head_[static_cast<std::size_t>(g)])));
  const int lo = g * block_;
  const int hi = lo + BlockWidth(g);
  for (int d = lo; d < hi; ++d)
    lane_filled_[static_cast<std::size_t>(d)] = static_cast<std::uint32_t>(
        std::min<std::size_t>(lane_filled_[static_cast<std::size_t>(d)] + 1,
                              slots));
}

void BatchWebWaveSimulator::RefreshBlockEstimates(int g) {
  const std::size_t nn = static_cast<std::size_t>(tree_.size());
  const std::size_t w = static_cast<std::size_t>(BlockWidth(g));
  const std::size_t block_doubles = w * nn;
  if (options_.gossip_delay == 0) {
    // No ring: gossip sees the live state, frozen into the front plane
    // until the next refresh.
    std::copy(served_.begin() + static_cast<std::ptrdiff_t>(BlockNodeBase(g)),
              served_.begin() +
                  static_cast<std::ptrdiff_t>(BlockNodeBase(g) + block_doubles),
              PlaneAt(g, FrontSlot()));
    return;
  }
  const std::size_t slots = static_cast<std::size_t>(ring_slots());
  const std::size_t head = block_head_[static_cast<std::size_t>(g)];
  const std::size_t delay = static_cast<std::size_t>(options_.gossip_delay);
  const int lo = g * block_;
  const int hi = lo + BlockWidth(g);
  bool uniform = true;
  for (int d = lo; d < hi; ++d)
    uniform = uniform &&
              lane_filled_[static_cast<std::size_t>(d)] == slots;
  if (uniform) {
    // Steady state: every lane reads the same (oldest) ring slot, and that
    // slot is exactly the one the next push will overwrite — so instead of
    // copying n·W doubles out of it, swap it with the front plane.  The
    // old front becomes the slot and is fully rewritten next step before
    // anyone reads it.
    const std::size_t consumed = (head + slots - delay) % slots;
    const std::size_t spb = static_cast<std::size_t>(slots_per_block());
    std::swap(plane_off_[static_cast<std::size_t>(g) * spb + consumed],
              plane_off_[static_cast<std::size_t>(g) * spb + spb - 1]);
    return;
  }
  // Lanes disagree on history depth (some restarted after churn within
  // the last gossip_delay steps): gather each lane's own delayed column.
  double* front = PlaneAt(g, FrontSlot());
  for (int d = lo; d < hi; ++d) {
    const std::size_t lag = std::min(
        delay,
        static_cast<std::size_t>(lane_filled_[static_cast<std::size_t>(d)]) -
            1);
    const double* slot =
        PlaneAt(g, static_cast<int>((head + slots - lag) % slots));
    const std::size_t b = static_cast<std::size_t>(LaneInBlock(d));
    for (std::size_t v = 0; v < nn; ++v)
      front[v * w + b] = slot[v * w + b];
  }
}

void BatchWebWaveSimulator::Step() {
  // Per block, the exact two-phase round of WebWaveSimulator::Step() (the
  // same kernel, see webwave_kernel.h) followed by the block's gossip
  // bookkeeping.  Everything a block touches — load slices, planes, RNGs,
  // ring positions — is its own, so the block sweep parallelizes with no
  // synchronization beyond the pool barrier, and the static partition
  // keeps results bit-identical to the serial order.
  const std::size_t edge_count = edges_->size();
  const bool instant = InstantGossip();
  const bool push_history = options_.gossip_delay > 0;
  const bool refresh =
      !instant && (steps_ + 1) % options_.gossip_period == 0;
  pool_->ParallelFor(
      static_cast<std::size_t>(blocks_),
      [&](int worker, std::size_t begin, std::size_t end) {
        if (begin == end) return;
        std::vector<double>& scratch =
            delta_[static_cast<std::size_t>(worker)];
        if (scratch.empty())
          scratch.assign(edge_count * static_cast<std::size_t>(block_), 0.0);
        double* delta = scratch.data();
        for (std::size_t gi = begin; gi < end; ++gi) {
          const int g = static_cast<int>(gi);
          const std::size_t base = BlockNodeBase(g);
          // Phase 1 reads estimates before phase 2 writes, so under
          // instantaneous gossip the served block doubles as the
          // estimate plane (same bytes a per-step refresh would copy).
          internal::StepLaneBlock(
              *edges_, capacity_.data(), options_,
              lane_rng_.data() + static_cast<std::size_t>(g) *
                                     static_cast<std::size_t>(block_),
              BlockWidth(g), served_.data() + base, forwarded_.data() + base,
              instant ? served_.data() + base : PlaneAt(g, FrontSlot()),
              delta,
              dirty_.data() + static_cast<std::size_t>(g) *
                                  static_cast<std::size_t>(block_));
          if (push_history) PushBlockHistory(g);
          if (refresh) RefreshBlockEstimates(g);
        }
      });
  ++steps_;
}

void BatchWebWaveSimulator::RestartLaneGossip(int d) {
  // Identical to WebWaveSimulator::ReprojectAfterChurn's bookkeeping, lane
  // for lane: the restart snapshot (the freshly projected served column)
  // becomes both the lane's only history entry and its live estimates.
  // Under instantaneous gossip there is nothing to restart — the kernel
  // reads the (just projected) served block directly.
  if (InstantGossip()) return;
  const std::size_t nn = static_cast<std::size_t>(tree_.size());
  const int g = BlockOf(d);
  const std::size_t w = static_cast<std::size_t>(BlockWidth(g));
  const std::size_t b = static_cast<std::size_t>(LaneInBlock(d));
  const double* lane = served_.data() + BlockNodeBase(g);
  if (options_.gossip_delay > 0) {
    lane_filled_[static_cast<std::size_t>(d)] = 1;
    double* head = PlaneAt(
        g, static_cast<int>(block_head_[static_cast<std::size_t>(g)]));
    for (std::size_t v = 0; v < nn; ++v)
      head[v * w + b] = lane[v * w + b];
  }
  double* front = PlaneAt(g, FrontSlot());
  for (std::size_t v = 0; v < nn; ++v) front[v * w + b] = lane[v * w + b];
}

void BatchWebWaveSimulator::ApplyDemandEvents(Span<DemandEvent> events) {
  if (events.empty()) return;
  // Validate the whole batch before mutating anything (a throw must leave
  // every lane untouched), then do the serial rate writes; the per-lane
  // projection below only touches lane-owned state, so it parallelizes.
  for (const DemandEvent& e : events) {
    WEBWAVE_REQUIRE(e.doc >= 0 && e.doc < docs_,
                    "demand event document out of range");
    WEBWAVE_REQUIRE(e.node >= 0 && e.node < tree_.size(),
                    "demand event node out of range");
    WEBWAVE_REQUIRE(e.rate >= 0, "spontaneous rates must be non-negative");
  }
  std::fill(churned_.begin(), churned_.end(), 0);
  for (const DemandEvent& e : events) {
    spontaneous_[LaneIndex(e.doc, e.node)] = e.rate;
    churned_[static_cast<std::size_t>(e.doc)] = 1;
  }
  std::vector<int> affected_blocks;
  for (int d = 0; d < docs_; ++d)
    if (churned_[static_cast<std::size_t>(d)]) {
      dirty_[static_cast<std::size_t>(d)] = 1;
      const int g = BlockOf(d);
      if (affected_blocks.empty() || affected_blocks.back() != g)
        affected_blocks.push_back(g);
    }

  pool_->ParallelFor(
      affected_blocks.size(), [&](int, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          const int g = affected_blocks[i];
          const std::size_t base = BlockNodeBase(g);
          // Identical to WebWaveSimulator::ReprojectAfterChurn, lane for
          // lane — but all of a block's churned lanes project in one
          // postorder sweep (ProjectLaneBlock reads each cache line of
          // the block once), then each restarts its gossip history and
          // refreshes its estimates.
          internal::ProjectLaneBlock(
              tree_, spontaneous_.data() + base, served_.data() + base,
              forwarded_.data() + base, BlockWidth(g),
              churned_.data() + static_cast<std::size_t>(g) *
                                    static_cast<std::size_t>(block_));
          const int lo = g * block_;
          const int hi = lo + BlockWidth(g);
          for (int d = lo; d < hi; ++d)
            if (churned_[static_cast<std::size_t>(d)]) RestartLaneGossip(d);
        }
      });
}

std::vector<double> BatchWebWaveSimulator::NodeLoads() const {
  const std::size_t nn = static_cast<std::size_t>(tree_.size());
  std::vector<double> total(nn, 0.0);
  for (int g = 0; g < blocks_; ++g) {
    const std::size_t w = static_cast<std::size_t>(BlockWidth(g));
    const double* block = served_.data() + BlockNodeBase(g);
    for (std::size_t v = 0; v < nn; ++v)
      for (std::size_t b = 0; b < w; ++b) total[v] += block[v * w + b];
  }
  return total;
}

std::vector<int> BatchWebWaveSimulator::DirtyLanes() const {
  std::vector<int> lanes;
  for (int d = 0; d < docs_; ++d)
    if (dirty_[static_cast<std::size_t>(d)]) lanes.push_back(d);
  return lanes;
}

bool BatchWebWaveSimulator::LaneDirty(int d) const {
  WEBWAVE_REQUIRE(d >= 0 && d < docs_, "document lane out of range");
  return dirty_[static_cast<std::size_t>(d)] != 0;
}

int BatchWebWaveSimulator::dirty_lane_count() const {
  int count = 0;
  for (const std::uint8_t f : dirty_) count += f != 0;
  return count;
}

void BatchWebWaveSimulator::ClearDirtyLanes() {
  std::fill(dirty_.begin(), dirty_.end(), 0);
}

void BatchWebWaveSimulator::ExportQuotas(
    double min_rate,
    const std::function<void(NodeId, std::int32_t, double, double)>& sink)
    const {
  WEBWAVE_REQUIRE(min_rate >= 0, "min_rate must be non-negative");
  const std::size_t nn = static_cast<std::size_t>(tree_.size());
  // Node-major sweep over the blocked storage: for a fixed node the lanes
  // of one block are contiguous (served[row + b]), so the CSR consumer's
  // order — nodes ascending, documents ascending within a node — walks
  // memory almost linearly instead of striding a full lane apart per cell.
  for (std::size_t v = 0; v < nn; ++v)
    for (int g = 0; g < blocks_; ++g) {
      const std::size_t w = static_cast<std::size_t>(BlockWidth(g));
      const std::size_t row = BlockNodeBase(g) + v * w;
      const double* served = served_.data() + row;
      const double* forwarded = forwarded_.data() + row;
      for (std::size_t b = 0; b < w; ++b)
        if (served[b] > min_rate)
          sink(static_cast<NodeId>(v),
               static_cast<std::int32_t>(g * block_ +
                                         static_cast<int>(b)),
               served[b], forwarded[b]);
    }
}

void BatchWebWaveSimulator::ExportLanesQuotas(
    Span<const int> lanes, double min_rate,
    std::vector<QuotaCell>* out) const {
  WEBWAVE_REQUIRE(min_rate >= 0, "min_rate must be non-negative");
  WEBWAVE_REQUIRE(out != nullptr, "export needs an output vector");
  if (lanes.empty()) return;
  // Group the requested lanes by block, keeping both orders ascending, so
  // the sweep below emits ExportQuotas order and touches each selected
  // block's rows once per node regardless of how many of its lanes were
  // asked for.
  // Maximal contiguous runs of selected lanes, per block: dirty sets are
  // usually runs of adjacent documents, and a [lo, hi) inner loop with no
  // offset indirection is what lets the sweep below run at line speed
  // instead of ~3 ns per (node, lane).
  struct RunSelect {
    const double* served;  // block's row of node 0
    const double* forwarded;
    std::size_t width;
    std::int32_t first_doc;  // document id of lane offset 0
    std::size_t lo, hi;      // selected lane-in-block offsets [lo, hi)
  };
  std::vector<RunSelect> selected;
  int last = -1;
  for (const int d : lanes) {
    WEBWAVE_REQUIRE(d > last, "lanes must be ascending and unique");
    WEBWAVE_REQUIRE(d < docs_, "document lane out of range");
    const int g = BlockOf(d);
    const std::size_t b = static_cast<std::size_t>(LaneInBlock(d));
    if (!selected.empty() && d == last + 1 &&
        selected.back().first_doc == static_cast<std::int32_t>(g * block_) &&
        selected.back().hi == b) {
      ++selected.back().hi;
    } else {
      selected.push_back({served_.data() + BlockNodeBase(g),
                          forwarded_.data() + BlockNodeBase(g),
                          static_cast<std::size_t>(BlockWidth(g)),
                          static_cast<std::int32_t>(g * block_), b, b + 1});
    }
    last = d;
  }
  const std::size_t nn = static_cast<std::size_t>(tree_.size());
  // Node-major over run-minor keeps the emission order; one row-pointer
  // computation per (node, run), and all of a block's selected lanes read
  // out of the same cache line(s).
  for (std::size_t v = 0; v < nn; ++v)
    for (const RunSelect& sel : selected) {
      const double* row = sel.served + v * sel.width;
      for (std::size_t b = sel.lo; b < sel.hi; ++b) {
        const double rate = row[b];
        if (rate > min_rate)
          out->push_back({static_cast<NodeId>(v),
                          sel.first_doc + static_cast<std::int32_t>(b), rate,
                          sel.forwarded[v * sel.width + b]});
      }
    }
}

double BatchWebWaveSimulator::MaxNodeLoad() const {
  const std::vector<double> total = NodeLoads();
  double mx = 0;
  for (const double l : total) mx = std::max(mx, l);
  return mx;
}

double BatchWebWaveSimulator::DistanceTo(
    int d, const std::vector<double>& target) const {
  return EuclideanDistance(ServedLane(d), target);
}

void BatchWebWaveSimulator::CheckInvariants(double tol) const {
  for (int d = 0; d < docs_; ++d) {
    const std::size_t nn = static_cast<std::size_t>(tree_.size());
    const std::vector<double> spont = SpontaneousLane(d);
    const std::vector<double> served = ServedLane(d);
    const std::vector<double> forwarded = ForwardedLane(d);
    const double total = TotalRate(spont);
    WEBWAVE_ASSERT(std::abs(TotalRate(served) - total) <=
                       tol * (1 + std::abs(total)),
                   "flow conservation violated in a document lane");
    const std::vector<double> expect = ForwardedRates(tree_, spont, served);
    for (std::size_t v = 0; v < nn; ++v) {
      WEBWAVE_ASSERT(served[v] >= -tol, "negative served rate in a lane");
      WEBWAVE_ASSERT(forwarded[v] >= -tol,
                     "NSS violated (negative A) in a lane");
      WEBWAVE_ASSERT(std::abs(forwarded[v] - expect[v]) <= tol * (1 + total),
                     "tracked A diverged from flow-conservation A");
    }
  }
}

}  // namespace webwave
