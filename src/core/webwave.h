// WebWave — the fully distributed diffusion protocol (§5, Figure 5).
//
// Each server i periodically tries to equalize its load with its tree
// neighbors, using only local information: its own served rate L_i, the
// request rate A_j it observes arriving from each child j, and gossiped
// estimates L_ij of its neighbors' loads.  The amount of load a parent can
// shift *down* to child j is capped by A_j — under NSS a child can only
// take over requests that already flow through it from its own subtree.
// Shifts *up* are capped by the child's own served rate.
//
// This engine simulates the protocol at the rate level (the paper's own
// evaluation methodology, §5.1): one Step() is one diffusion period.  It
// supports the paper's simplifying assumptions (synchronous rounds,
// instantaneous gossip) and their relaxations (gossip period > diffusion
// period, bounded-delay stale estimates, asynchronous activation), which
// §5.1 lists as the knobs a real deployment would have.
//
// Invariants maintained exactly (checked by tests after every step):
//   Σ L = Σ E (flow conservation),  L >= 0,  A >= 0 (NSS),  A_root = 0.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "tree/routing_tree.h"
#include "util/rng.h"

namespace webwave {

// How the diffusion parameter α_ij of an edge is chosen.  The paper's
// Figure 5 notes "other values of α_i are possible"; the standard choice
// guaranteeing Cybenko's convergence conditions (1 − Σ_j α_ij > 0) is
// 1/(1 + max degree of the endpoints).
enum class AlphaPolicy {
  // α_ij = min(alpha, 1/(1 + max degree)): the requested value, capped so
  // Cybenko's stability condition always holds.
  kFixed,
  // α_ij = alpha exactly, even when it violates the stability condition —
  // used by the ablation bench to demonstrate why the condition matters.
  kFixedUncapped,
  // α_ij = 1 / (1 + max(deg(i), deg(j))) (the default).
  kDegree,
};

// Where the load sits before the protocol starts.
enum class InitialLoad {
  kAllAtRoot,    // cold start: no caches yet, the home server serves all
  kSelfService,  // every node serves exactly its spontaneous requests
};

struct WebWaveOptions {
  AlphaPolicy alpha_policy = AlphaPolicy::kDegree;
  double alpha = 0.25;        // used when alpha_policy == kFixed
  InitialLoad initial_load = InitialLoad::kAllAtRoot;
  int gossip_period = 1;      // steps between neighbor-estimate refreshes
  int gossip_delay = 0;       // estimates lag the true load by this many steps
  bool asynchronous = false;  // edges activate independently at random
  double activation_probability = 0.5;  // per-edge, in asynchronous mode
  // Per-node service capacities.  Empty reproduces the paper's uniform-
  // capacity assumption.  When set, diffusion equalizes *utilizations*
  // L_i / c_i and converges to the WebFoldWeighted assignment.
  std::vector<double> capacities;
  std::uint64_t seed = 1;
};

class WebWaveSimulator {
 public:
  WebWaveSimulator(const RoutingTree& tree, std::vector<double> spontaneous,
                   WebWaveOptions options = {});

  // Executes one diffusion period for every server.
  void Step();

  // Replaces the spontaneous request rates mid-run ("erratic request
  // rates", §5.1's ongoing-study scenario).  The current served vector is
  // projected onto the new feasible set: in postorder, every node keeps
  // min(L_v, arriving flow) and the remainder shifts toward the root,
  // which always absorbs it.  Invariants hold immediately afterwards.
  void UpdateSpontaneous(std::vector<double> spontaneous);

  int steps() const { return steps_; }
  const std::vector<double>& served() const { return served_; }
  const std::vector<double>& forwarded() const { return forwarded_; }
  const std::vector<double>& spontaneous() const { return spontaneous_; }

  // Euclidean distance from the current served vector to a target
  // assignment — the paper's convergence metric.
  double DistanceTo(const std::vector<double>& target) const;

  // Steps until DistanceTo(target) <= tol or max_steps is reached; returns
  // the distance trajectory including the initial state (index 0 = before
  // the first step).
  std::vector<double> RunUntil(const std::vector<double>& target, double tol,
                               int max_steps);

  // Verifies the state invariants listed in the file comment.
  // Throws std::logic_error on violation.
  void CheckInvariants(double tol = 1e-6) const;

 private:
  struct Edge {
    NodeId parent;
    NodeId child;
    double alpha;
  };

  // The load estimate node a currently holds for neighbor b.
  double Estimate(NodeId a, NodeId b) const;
  void RefreshEstimates();

  const RoutingTree& tree_;
  std::vector<double> spontaneous_;
  std::vector<double> capacity_;   // all ones under the paper's assumption
  std::vector<double> served_;     // L
  std::vector<double> forwarded_;  // A
  std::vector<Edge> edges_;
  WebWaveOptions options_;
  Rng rng_;
  int steps_ = 0;

  // estimates_[v] holds v's view of each neighbor's load, refreshed every
  // gossip_period steps from a history delayed by gossip_delay steps.
  std::vector<std::vector<std::pair<NodeId, double>>> estimates_;
  std::deque<std::vector<double>> history_;  // recent served vectors
};

}  // namespace webwave
