// WebWave — the fully distributed diffusion protocol (§5, Figure 5).
//
// Each server i periodically tries to equalize its load with its tree
// neighbors, using only local information: its own served rate L_i, the
// request rate A_j it observes arriving from each child j, and gossiped
// estimates L_ij of its neighbors' loads.  The amount of load a parent can
// shift *down* to child j is capped by A_j — under NSS a child can only
// take over requests that already flow through it from its own subtree.
// Shifts *up* are capped by the child's own served rate.
//
// This engine simulates the protocol at the rate level (the paper's own
// evaluation methodology, §5.1): one Step() is one diffusion period.  It
// supports the paper's simplifying assumptions (synchronous rounds,
// instantaneous gossip) and their relaxations (gossip period > diffusion
// period, bounded-delay stale estimates, asynchronous activation), which
// §5.1 lists as the knobs a real deployment would have.
//
// Invariants maintained exactly (checked by tests after every step):
//   Σ L = Σ E (flow conservation),  L >= 0,  A >= 0 (NSS),  A_root = 0.
//
// Layout: the simulator is structure-of-arrays over *edges*.  The tree's
// n − 1 edges are flattened once at construction into parallel arrays
// (edges_->parent[k], edges_->child[k], edges_->alpha[k] — see
// webwave_kernel.h, shared with the batched simulator; pass a
// SharedEdgeArrays to reuse one build across several simulators over the
// same tree) in ascending child-id order.  Gossiped neighbor estimates
// live in a single node-indexed *estimate plane* (est_plane_[v] = the load
// of v as gossip last delivered it): the step kernel reads the two
// endpoint slots of each edge directly, so one n-sized plane replaces the
// two edge-indexed estimate arrays the previous layout materialized, and a
// gossip refresh is a straight n-element copy instead of a 2(n−1)-element
// gather.  delta_[k] is the transfer decided this round.  Step() is two
// linear sweeps over k with no pointer chasing and no per-neighbor search.
// Past served vectors for delayed gossip sit in a fixed-capacity flat ring
// buffer of gossip_delay + 1 slots — no allocation after construction;
// with zero delay the ring is elided and gossip reads the live served
// vector.
#pragma once

#include <cstdint>
#include <vector>

#include "core/webwave_kernel.h"
#include "core/webwave_options.h"
#include "tree/routing_tree.h"
#include "util/rng.h"
#include "util/span.h"

namespace webwave {

class WebWaveSimulator {
 public:
  // `edges` optionally shares one flattened edge structure between several
  // simulators over the same tree and alpha policy (see
  // internal::BuildSharedEdgeArrays); null builds a private copy.
  WebWaveSimulator(const RoutingTree& tree, std::vector<double> spontaneous,
                   WebWaveOptions options = {},
                   internal::SharedEdgeArrays edges = nullptr);

  // The edge structure this simulator sweeps — pass to further simulators
  // over the same tree to share the build.
  internal::SharedEdgeArrays shared_edges() const { return edges_; }

  // Executes one diffusion period for every server.
  void Step();

  // Replaces the spontaneous request rates mid-run ("erratic request
  // rates", §5.1's ongoing-study scenario).  The current served vector is
  // projected onto the new feasible set: in postorder, every node keeps
  // min(L_v, arriving flow) and the remainder shifts toward the root,
  // which always absorbs it.  Invariants hold immediately afterwards.
  void UpdateSpontaneous(std::vector<double> spontaneous);

  // The batched form of UpdateSpontaneous: each event sets one node's
  // spontaneous rate (doc must be 0 — this simulator runs one document);
  // the served vector is re-projected once after the whole batch, so
  // applying {events} equals calling UpdateSpontaneous with the merged
  // vector.  An empty batch is a no-op (no projection, no estimate
  // refresh).
  void ApplyDemandEvents(Span<DemandEvent> events);

  int steps() const { return steps_; }
  const std::vector<double>& served() const { return served_; }
  const std::vector<double>& forwarded() const { return forwarded_; }
  const std::vector<double>& spontaneous() const { return spontaneous_; }

  // Euclidean distance from the current served vector to a target
  // assignment — the paper's convergence metric.
  double DistanceTo(const std::vector<double>& target) const;

  // Steps until DistanceTo(target) <= tol or max_steps is reached; returns
  // the distance trajectory including the initial state (index 0 = before
  // the first step).
  std::vector<double> RunUntil(const std::vector<double>& target, double tol,
                               int max_steps);

  // Verifies the state invariants listed in the file comment.
  // Throws std::logic_error on violation.
  void CheckInvariants(double tol = 1e-6) const;

 private:
  // Gossip period 1 with delay 0 (the paper's instantaneous-gossip
  // default): the estimate plane would always equal the start-of-step
  // served vector, so none is kept and the kernel reads served directly.
  bool InstantGossip() const;
  void RefreshEstimates();
  // Projection + gossip restart shared by UpdateSpontaneous and
  // ApplyDemandEvents (see the comment in UpdateSpontaneous's body).
  void ReprojectAfterChurn();
  // The served vector as it looked gossip_delay steps ago (clamped to the
  // oldest recorded state); the live vector when the delay is zero.
  const double* DelayedServedView() const;
  void PushHistory();

  const RoutingTree& tree_;
  std::vector<double> spontaneous_;
  std::vector<double> capacity_;   // all ones under the paper's assumption
  std::vector<double> served_;     // L
  std::vector<double> forwarded_;  // A
  WebWaveOptions options_;
  Rng rng_;
  int steps_ = 0;

  // Structure-of-arrays edge layout (see file comment): slot k describes
  // the tree edge to child edges_->child[k], in ascending child-id order.
  internal::SharedEdgeArrays edges_;
  std::vector<double> est_plane_;  // node-indexed gossiped load estimates
  std::vector<double> delta_;     // per-edge transfer scratch

  // Flat ring of past served vectors: slot (history_head_) is the current
  // step, slot (history_head_ − d) the vector d steps ago.  Sized
  // (gossip_delay + 1) · n; empty when gossip_delay == 0.
  std::vector<double> history_;
  std::size_t history_head_ = 0;
  std::size_t history_filled_ = 1;
};

}  // namespace webwave
