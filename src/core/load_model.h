// The load model of §3 (Table 1, Figure 1).
//
// Every node i of a routing tree receives requests at rate E_i + Σ_{j∈C_i} A_j
// (its own spontaneous requests plus what its children forward), serves L_i
// of them, and forwards the remainder A_i = E_i + Σ_j A_j − L_i to its
// parent.  A load assignment L is *feasible* iff
//
//   * L_i >= 0 for every node,
//   * A_i >= 0 for every node        (Constraint 2, "no sibling sharing"),
//   * A_root = 0                     (Constraint 1, the root forwards nothing).
//
// A_root = 0 is equivalent to Σ L = Σ E: every generated request is served
// somewhere on its path.  The paper chooses arrival rate as the load metric
// precisely because it obeys this flow conservation.
#pragma once

#include <vector>

#include "tree/routing_tree.h"

namespace webwave {

// Computes the forwarded rates A implied by spontaneous rates E and served
// rates L, bottom-up.  No feasibility is implied; entries may be negative.
std::vector<double> ForwardedRates(const RoutingTree& tree,
                                   const std::vector<double>& spontaneous,
                                   const std::vector<double>& served);

struct FeasibilityReport {
  bool served_nonnegative = false;  // L_i >= -tol
  bool nss = false;                 // A_i >= -tol for all i (Constraint 2)
  bool root_forwards_nothing = false;  // |A_root| <= tol   (Constraint 1)
  double worst_violation = 0;          // most negative margin observed

  bool ok() const {
    return served_nonnegative && nss && root_forwards_nothing;
  }
};

// Checks the three feasibility conditions above with absolute tolerance.
FeasibilityReport CheckFeasible(const RoutingTree& tree,
                                const std::vector<double>& spontaneous,
                                const std::vector<double>& served,
                                double tol = 1e-9);

// The Global Load Equality assignment (§2): every node serves Σ E / n.
std::vector<double> GleAssignment(int node_count, double total_rate);

// True when the GLE assignment is feasible on this tree — i.e. when the
// uniform distribution violates no subtree constraint.  Figure 2(a) is a
// tree where this holds; Figure 2(b) one where it does not.
bool GleIsFeasible(const RoutingTree& tree,
                   const std::vector<double>& spontaneous, double tol = 1e-9);

// True when every entry of `load` equals the mean within tolerance.
bool IsUniform(const std::vector<double>& load, double tol = 1e-9);

// Sum of a rate vector.
double TotalRate(const std::vector<double>& rates);

}  // namespace webwave
