#include "core/diffusion.h"

#include <algorithm>
#include <cmath>

#include "stats/summary.h"
#include "util/check.h"
#include "util/rng.h"

namespace webwave {

UndirectedGraph::UndirectedGraph(int n)
    : adjacency_(static_cast<std::size_t>(n)) {
  WEBWAVE_REQUIRE(n >= 1, "graph needs at least one node");
}

void UndirectedGraph::AddEdge(int u, int v) {
  WEBWAVE_REQUIRE(u >= 0 && u < size() && v >= 0 && v < size(),
                  "edge endpoint out of range");
  WEBWAVE_REQUIRE(u != v, "self loops not allowed");
  adjacency_[static_cast<std::size_t>(u)].push_back(v);
  adjacency_[static_cast<std::size_t>(v)].push_back(u);
  ++edge_count_;
}

const std::vector<int>& UndirectedGraph::neighbors(int v) const {
  WEBWAVE_REQUIRE(v >= 0 && v < size(), "node out of range");
  return adjacency_[static_cast<std::size_t>(v)];
}

int UndirectedGraph::degree(int v) const {
  return static_cast<int>(neighbors(v).size());
}

bool UndirectedGraph::IsConnected() const {
  std::vector<bool> seen(static_cast<std::size_t>(size()), false);
  std::vector<int> stack = {0};
  seen[0] = true;
  int count = 0;
  while (!stack.empty()) {
    const int v = stack.back();
    stack.pop_back();
    ++count;
    for (const int w : adjacency_[static_cast<std::size_t>(v)]) {
      if (!seen[static_cast<std::size_t>(w)]) {
        seen[static_cast<std::size_t>(w)] = true;
        stack.push_back(w);
      }
    }
  }
  return count == size();
}

int UndirectedGraph::MaxDegree() const {
  int m = 0;
  for (int v = 0; v < size(); ++v) m = std::max(m, degree(v));
  return m;
}

UndirectedGraph MakeRingGraph(int n) {
  WEBWAVE_REQUIRE(n >= 3, "ring needs >= 3 nodes");
  UndirectedGraph g(n);
  for (int v = 0; v < n; ++v) g.AddEdge(v, (v + 1) % n);
  return g;
}

UndirectedGraph MakePathGraph(int n) {
  UndirectedGraph g(n);
  for (int v = 0; v + 1 < n; ++v) g.AddEdge(v, v + 1);
  return g;
}

UndirectedGraph MakeCompleteGraph(int n) {
  UndirectedGraph g(n);
  for (int u = 0; u < n; ++u)
    for (int v = u + 1; v < n; ++v) g.AddEdge(u, v);
  return g;
}

UndirectedGraph MakeHypercubeGraph(int dimensions) {
  WEBWAVE_REQUIRE(dimensions >= 1 && dimensions <= 20, "dimensions in 1..20");
  const int n = 1 << dimensions;
  UndirectedGraph g(n);
  for (int v = 0; v < n; ++v)
    for (int d = 0; d < dimensions; ++d)
      if ((v ^ (1 << d)) > v) g.AddEdge(v, v ^ (1 << d));
  return g;
}

UndirectedGraph MakeTorusGraph(int width, int height) {
  WEBWAVE_REQUIRE(width >= 2 && height >= 2, "torus needs >= 2x2");
  UndirectedGraph g(width * height);
  auto id = [&](int x, int y) { return y * width + x; };
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      if (width > 2 || x + 1 < width) g.AddEdge(id(x, y), id((x + 1) % width, y));
      if (height > 2 || y + 1 < height) g.AddEdge(id(x, y), id(x, (y + 1) % height));
    }
  }
  return g;
}

UndirectedGraph MakeKAryNCubeGraph(int k, int n) {
  WEBWAVE_REQUIRE(k >= 2, "k must be >= 2");
  WEBWAVE_REQUIRE(n >= 1, "n must be >= 1");
  int total = 1;
  for (int i = 0; i < n; ++i) {
    WEBWAVE_REQUIRE(total <= 1'000'000 / k, "k-ary n-cube too large");
    total *= k;
  }
  UndirectedGraph g(total);
  // Node id encodes its coordinate vector in base k.  Every node links to
  // its +1 neighbor in each dimension; that enumerates each cycle edge
  // exactly once, except for k = 2 where both endpoints generate the same
  // pair (a 2-cycle collapses to a single edge).
  std::vector<int> stride(static_cast<std::size_t>(n), 1);
  for (int d = 1; d < n; ++d)
    stride[static_cast<std::size_t>(d)] = stride[static_cast<std::size_t>(d - 1)] * k;
  for (int v = 0; v < total; ++v) {
    for (int d = 0; d < n; ++d) {
      const int coord = (v / stride[static_cast<std::size_t>(d)]) % k;
      const int next = (coord + 1) % k;
      const int w = v + (next - coord) * stride[static_cast<std::size_t>(d)];
      if (k == 2 && w < v) continue;
      g.AddEdge(v, w);
    }
  }
  return g;
}

UndirectedGraph GraphFromTree(const RoutingTree& tree) {
  UndirectedGraph g(tree.size());
  for (NodeId v = 0; v < tree.size(); ++v)
    if (!tree.is_root(v)) g.AddEdge(v, tree.parent(v));
  return g;
}

DiffusionMatrix DiffusionMatrix::Uniform(const UndirectedGraph& graph,
                                         double alpha) {
  WEBWAVE_REQUIRE(alpha > 0, "alpha must be positive");
  WEBWAVE_REQUIRE(alpha * graph.MaxDegree() < 1.0 + 1e-12,
                  "alpha too large: diagonal would go negative");
  DiffusionMatrix m(graph.size());
  for (int i = 0; i < graph.size(); ++i) {
    double off = 0;
    for (const int j : graph.neighbors(i)) {
      m.data_[static_cast<std::size_t>(i) * m.n_ + j] = alpha;
      off += alpha;
    }
    m.data_[static_cast<std::size_t>(i) * m.n_ + i] = 1.0 - off;
  }
  return m;
}

DiffusionMatrix DiffusionMatrix::DegreeBased(const UndirectedGraph& graph) {
  DiffusionMatrix m(graph.size());
  for (int i = 0; i < graph.size(); ++i) {
    double off = 0;
    for (const int j : graph.neighbors(i)) {
      const double a = 1.0 / (1.0 + std::max(graph.degree(i), graph.degree(j)));
      m.data_[static_cast<std::size_t>(i) * m.n_ + j] = a;
      off += a;
    }
    m.data_[static_cast<std::size_t>(i) * m.n_ + i] = 1.0 - off;
  }
  return m;
}

std::vector<double> DiffusionMatrix::Apply(const std::vector<double>& x) const {
  WEBWAVE_REQUIRE(x.size() == static_cast<std::size_t>(n_), "size mismatch");
  std::vector<double> y(x.size(), 0.0);
  for (int i = 0; i < n_; ++i) {
    double acc = 0;
    const double* row = data_.data() + static_cast<std::size_t>(i) * n_;
    for (int j = 0; j < n_; ++j) acc += row[j] * x[static_cast<std::size_t>(j)];
    y[static_cast<std::size_t>(i)] = acc;
  }
  return y;
}

double DiffusionMatrix::SpectralGamma(int iterations) const {
  if (n_ == 1) return 0;
  // Power iteration orthogonal to the all-ones eigenvector (eigenvalue 1).
  // D is symmetric for our constructors, so this converges to the
  // second-largest |eigenvalue|.
  std::vector<double> x(static_cast<std::size_t>(n_));
  for (int i = 0; i < n_; ++i)
    x[static_cast<std::size_t>(i)] =
        std::sin(1.0 + 0.7 * i) + (i % 2 != 0 ? 0.3 : 0.0);
  auto deflate = [&](std::vector<double>& v) {
    double mean = 0;
    for (const double e : v) mean += e;
    mean /= static_cast<double>(n_);
    for (double& e : v) e -= mean;
  };
  deflate(x);
  double gamma = 0;
  for (int it = 0; it < iterations; ++it) {
    std::vector<double> y = Apply(x);
    deflate(y);
    double norm = 0;
    for (const double e : y) norm += e * e;
    norm = std::sqrt(norm);
    if (norm < 1e-300) return 0;
    // Rayleigh-style estimate of |λ₂| from the norm growth.
    double xnorm = 0;
    for (const double e : x) xnorm += e * e;
    xnorm = std::sqrt(xnorm);
    gamma = norm / xnorm;
    for (std::size_t i = 0; i < y.size(); ++i) y[i] /= norm;
    x = std::move(y);
  }
  return gamma;
}

namespace {

// Assembles CSR rows from a per-row list of (column, value) off-diagonal
// entries plus the doubly-stochastic diagonal 1 − Σ off-diagonal.
template <typename EdgeAlphaFn>
void BuildCsrRows(const UndirectedGraph& graph, EdgeAlphaFn&& alpha_of,
                  std::vector<std::size_t>& row_ptr,
                  std::vector<std::int32_t>& col,
                  std::vector<double>& values) {
  const int n = graph.size();
  col.reserve(static_cast<std::size_t>(n) + 2u * graph.edge_count());
  values.reserve(col.capacity());
  std::vector<std::pair<std::int32_t, double>> row;
  for (int i = 0; i < n; ++i) {
    row.clear();
    double off = 0;
    for (const int j : graph.neighbors(i)) {
      const double a = alpha_of(i, j);
      row.push_back({static_cast<std::int32_t>(j), a});
      off += a;
    }
    row.push_back({static_cast<std::int32_t>(i), 1.0 - off});
    std::sort(row.begin(), row.end());
    for (const auto& [j, a] : row) {
      col.push_back(j);
      values.push_back(a);
    }
    row_ptr[static_cast<std::size_t>(i) + 1] = col.size();
  }
}

}  // namespace

SparseDiffusionMatrix SparseDiffusionMatrix::Uniform(
    const UndirectedGraph& graph, double alpha) {
  WEBWAVE_REQUIRE(alpha > 0, "alpha must be positive");
  WEBWAVE_REQUIRE(alpha * graph.MaxDegree() < 1.0 + 1e-12,
                  "alpha too large: diagonal would go negative");
  SparseDiffusionMatrix m(graph.size());
  BuildCsrRows(graph, [alpha](int, int) { return alpha; }, m.row_ptr_,
               m.col_, m.values_);
  return m;
}

SparseDiffusionMatrix SparseDiffusionMatrix::DegreeBased(
    const UndirectedGraph& graph) {
  SparseDiffusionMatrix m(graph.size());
  BuildCsrRows(
      graph,
      [&graph](int i, int j) {
        return 1.0 / (1.0 + std::max(graph.degree(i), graph.degree(j)));
      },
      m.row_ptr_, m.col_, m.values_);
  return m;
}

SparseDiffusionMatrix SparseDiffusionMatrix::FromDense(
    const DiffusionMatrix& dense) {
  const int n = dense.size();
  SparseDiffusionMatrix m(n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      const double a = dense.at(i, j);
      if (a != 0.0 || i == j) {
        m.col_.push_back(j);
        m.values_.push_back(a);
      }
    }
    m.row_ptr_[static_cast<std::size_t>(i) + 1] = m.col_.size();
  }
  return m;
}

double SparseDiffusionMatrix::at(int i, int j) const {
  WEBWAVE_REQUIRE(i >= 0 && i < n_ && j >= 0 && j < n_, "index out of range");
  for (std::size_t k = row_ptr_[static_cast<std::size_t>(i)];
       k < row_ptr_[static_cast<std::size_t>(i) + 1]; ++k)
    if (col_[k] == j) return values_[k];
  return 0.0;
}

void SparseDiffusionMatrix::ApplyInto(const std::vector<double>& x,
                                      std::vector<double>& y) const {
  WEBWAVE_REQUIRE(x.size() == static_cast<std::size_t>(n_), "size mismatch");
  WEBWAVE_REQUIRE(&x != &y, "ApplyInto output must not alias the input");
  y.resize(x.size());
  const std::int32_t* cols = col_.data();
  const double* vals = values_.data();
  for (int i = 0; i < n_; ++i) {
    double acc = 0;
    const std::size_t end = row_ptr_[static_cast<std::size_t>(i) + 1];
    for (std::size_t k = row_ptr_[static_cast<std::size_t>(i)]; k < end; ++k)
      acc += vals[k] * x[static_cast<std::size_t>(cols[k])];
    y[static_cast<std::size_t>(i)] = acc;
  }
}

std::vector<double> SparseDiffusionMatrix::Apply(
    const std::vector<double>& x) const {
  std::vector<double> y;
  ApplyInto(x, y);
  return y;
}

double SparseDiffusionMatrix::SpectralGamma(int iterations) const {
  if (n_ == 1) return 0;
  // Deflated power iteration, identical to the dense class but with one
  // O(n + E) sweep per iteration and no per-iteration allocation.
  std::vector<double> x(static_cast<std::size_t>(n_));
  for (int i = 0; i < n_; ++i)
    x[static_cast<std::size_t>(i)] =
        std::sin(1.0 + 0.7 * i) + (i % 2 != 0 ? 0.3 : 0.0);
  auto deflate = [&](std::vector<double>& v) {
    double mean = 0;
    for (const double e : v) mean += e;
    mean /= static_cast<double>(n_);
    for (double& e : v) e -= mean;
  };
  deflate(x);
  std::vector<double> y;
  double gamma = 0;
  for (int it = 0; it < iterations; ++it) {
    ApplyInto(x, y);
    deflate(y);
    double norm = 0;
    for (const double e : y) norm += e * e;
    norm = std::sqrt(norm);
    if (norm < 1e-300) return 0;
    double xnorm = 0;
    for (const double e : x) xnorm += e * e;
    xnorm = std::sqrt(xnorm);
    gamma = norm / xnorm;
    for (double& e : y) e /= norm;
    std::swap(x, y);
  }
  return gamma;
}

double OptimalAlphaKAryNCube(int k, int n) {
  WEBWAVE_REQUIRE(k >= 2 && n >= 1, "invalid k-ary n-cube");
  // Laplacian eigenvalues of the k-ary n-cube are Σ_d 2(1 − cos(2π m_d/k)).
  const double pi = 3.14159265358979323846;
  const double mu_min = 2.0 * (1.0 - std::cos(2.0 * pi / k));
  // Max over a single dimension: m = floor(k/2).
  const double mu_dim_max =
      2.0 * (1.0 - std::cos(2.0 * pi * std::floor(k / 2.0) / k));
  const double mu_max = n * mu_dim_max;
  return 2.0 / (mu_min + mu_max);
}

DiffusionRun RunDiffusion(const SparseDiffusionMatrix& matrix,
                          std::vector<double> initial, double tol,
                          int max_steps) {
  WEBWAVE_REQUIRE(initial.size() == static_cast<std::size_t>(matrix.size()),
                  "size mismatch");
  double total = 0;
  for (const double v : initial) total += v;
  const std::vector<double> uniform(initial.size(),
                                    total / static_cast<double>(initial.size()));
  DiffusionRun run;
  run.distances.push_back(EuclideanDistance(initial, uniform));
  std::vector<double> x = std::move(initial);
  std::vector<double> next;
  for (int t = 0; t < max_steps; ++t) {
    if (run.distances.back() <= tol) {
      run.reached_tolerance = true;
      break;
    }
    matrix.ApplyInto(x, next);
    std::swap(x, next);
    run.distances.push_back(EuclideanDistance(x, uniform));
  }
  if (run.distances.back() <= tol) run.reached_tolerance = true;
  run.final_load = std::move(x);
  return run;
}

DiffusionRun RunDiffusion(const DiffusionMatrix& matrix,
                          std::vector<double> initial, double tol,
                          int max_steps) {
  // Compress once, iterate sparsely: identical arithmetic per sweep (CSR
  // rows keep ascending column order, matching the dense summation).
  return RunDiffusion(SparseDiffusionMatrix::FromDense(matrix),
                      std::move(initial), tol, max_steps);
}

DiffusionRun RunAsyncDiffusion(const UndirectedGraph& graph, double alpha,
                               std::vector<double> initial,
                               const AsyncDiffusionOptions& options,
                               double tol, int max_steps) {
  WEBWAVE_REQUIRE(initial.size() == static_cast<std::size_t>(graph.size()),
                  "size mismatch");
  WEBWAVE_REQUIRE(alpha > 0 && alpha * graph.MaxDegree() < 1.0 + 1e-12,
                  "alpha violates the positive-diagonal condition");
  WEBWAVE_REQUIRE(options.activation > 0 && options.activation <= 1,
                  "activation probability in (0, 1]");
  WEBWAVE_REQUIRE(options.max_delay >= 0, "delay must be non-negative");
  Rng rng(options.seed);

  double total = 0;
  for (const double v : initial) total += v;
  const std::vector<double> uniform(
      initial.size(), total / static_cast<double>(initial.size()));

  // Sparse edge path: the undirected edge list is flattened once so every
  // sweep is a single pass over two index arrays instead of a nested
  // adjacency traversal with a skip test per direction.
  const std::size_t n = static_cast<std::size_t>(graph.size());
  std::vector<std::int32_t> edge_u, edge_v;
  edge_u.reserve(static_cast<std::size_t>(graph.edge_count()));
  edge_v.reserve(static_cast<std::size_t>(graph.edge_count()));
  for (int i = 0; i < graph.size(); ++i)
    for (const int j : graph.neighbors(i))
      if (j > i) {
        edge_u.push_back(i);
        edge_v.push_back(j);
      }

  // History ring for stale reads, stored as a flat (max_delay + 1) × n
  // buffer: slot `head` is the current sweep, slot (head − d) the vector d
  // sweeps ago.  Transfers are edge-atomic (the donor decides from its own
  // current value and a possibly stale view of the receiver, then both
  // endpoints are updated together), so total load is conserved *exactly*
  // no matter how stale the views are — the same discipline WebWave uses.
  const std::size_t slots = static_cast<std::size_t>(options.max_delay) + 1;
  std::vector<double> history(slots * n);
  std::copy(initial.begin(), initial.end(), history.begin());
  std::size_t head = 0;
  std::size_t filled = 1;
  const auto view = [&](std::size_t delay) {
    const std::size_t d = std::min(delay, filled - 1);
    return history.data() + ((head + slots - d) % slots) * n;
  };

  DiffusionRun run;
  run.distances.push_back(EuclideanDistance(initial, uniform));
  std::vector<double> x = std::move(initial);
  for (int t = 0; t < max_steps && run.distances.back() > tol; ++t) {
    for (std::size_t k = 0; k < edge_u.size(); ++k) {
      if (!rng.NextBernoulli(options.activation)) continue;
      const std::size_t i = static_cast<std::size_t>(edge_u[k]);
      const std::size_t j = static_cast<std::size_t>(edge_v[k]);
      const std::size_t di = static_cast<std::size_t>(rng.NextBelow(
          static_cast<std::uint64_t>(options.max_delay) + 1));
      const std::size_t dj = static_cast<std::size_t>(rng.NextBelow(
          static_cast<std::uint64_t>(options.max_delay) + 1));
      const double view_of_j = view(di)[j];
      const double view_of_i = view(dj)[i];
      double transfer = 0;  // positive: i -> j
      if (x[i] > view_of_j) {
        transfer = std::min(alpha * (x[i] - view_of_j), x[i]);
      } else if (x[j] > view_of_i) {
        transfer = std::max(-alpha * (x[j] - view_of_i), -x[j]);
      }
      x[i] -= transfer;
      x[j] += transfer;
    }
    head = (head + 1) % slots;
    filled = std::min(filled + 1, slots);
    std::copy(x.begin(), x.end(), history.begin() + head * n);
    run.distances.push_back(EuclideanDistance(x, uniform));
  }
  run.reached_tolerance = run.distances.back() <= tol;
  run.final_load = std::move(x);
  return run;
}

bool CybenkoBoundHolds(const DiffusionRun& run, double gamma, double slack) {
  const double d0 = run.distances.empty() ? 0 : run.distances.front();
  double bound = d0;
  for (std::size_t t = 1; t < run.distances.size(); ++t) {
    bound *= gamma;
    if (run.distances[t] > bound + slack * (1 + d0)) return false;
  }
  return true;
}

}  // namespace webwave
