#include "core/diffusion.h"

#include <algorithm>
#include <cmath>
#include <deque>

#include "stats/summary.h"
#include "util/check.h"
#include "util/rng.h"

namespace webwave {

UndirectedGraph::UndirectedGraph(int n)
    : adjacency_(static_cast<std::size_t>(n)) {
  WEBWAVE_REQUIRE(n >= 1, "graph needs at least one node");
}

void UndirectedGraph::AddEdge(int u, int v) {
  WEBWAVE_REQUIRE(u >= 0 && u < size() && v >= 0 && v < size(),
                  "edge endpoint out of range");
  WEBWAVE_REQUIRE(u != v, "self loops not allowed");
  adjacency_[static_cast<std::size_t>(u)].push_back(v);
  adjacency_[static_cast<std::size_t>(v)].push_back(u);
  ++edge_count_;
}

const std::vector<int>& UndirectedGraph::neighbors(int v) const {
  WEBWAVE_REQUIRE(v >= 0 && v < size(), "node out of range");
  return adjacency_[static_cast<std::size_t>(v)];
}

int UndirectedGraph::degree(int v) const {
  return static_cast<int>(neighbors(v).size());
}

bool UndirectedGraph::IsConnected() const {
  std::vector<bool> seen(static_cast<std::size_t>(size()), false);
  std::vector<int> stack = {0};
  seen[0] = true;
  int count = 0;
  while (!stack.empty()) {
    const int v = stack.back();
    stack.pop_back();
    ++count;
    for (const int w : adjacency_[static_cast<std::size_t>(v)]) {
      if (!seen[static_cast<std::size_t>(w)]) {
        seen[static_cast<std::size_t>(w)] = true;
        stack.push_back(w);
      }
    }
  }
  return count == size();
}

int UndirectedGraph::MaxDegree() const {
  int m = 0;
  for (int v = 0; v < size(); ++v) m = std::max(m, degree(v));
  return m;
}

UndirectedGraph MakeRingGraph(int n) {
  WEBWAVE_REQUIRE(n >= 3, "ring needs >= 3 nodes");
  UndirectedGraph g(n);
  for (int v = 0; v < n; ++v) g.AddEdge(v, (v + 1) % n);
  return g;
}

UndirectedGraph MakePathGraph(int n) {
  UndirectedGraph g(n);
  for (int v = 0; v + 1 < n; ++v) g.AddEdge(v, v + 1);
  return g;
}

UndirectedGraph MakeCompleteGraph(int n) {
  UndirectedGraph g(n);
  for (int u = 0; u < n; ++u)
    for (int v = u + 1; v < n; ++v) g.AddEdge(u, v);
  return g;
}

UndirectedGraph MakeHypercubeGraph(int dimensions) {
  WEBWAVE_REQUIRE(dimensions >= 1 && dimensions <= 20, "dimensions in 1..20");
  const int n = 1 << dimensions;
  UndirectedGraph g(n);
  for (int v = 0; v < n; ++v)
    for (int d = 0; d < dimensions; ++d)
      if ((v ^ (1 << d)) > v) g.AddEdge(v, v ^ (1 << d));
  return g;
}

UndirectedGraph MakeTorusGraph(int width, int height) {
  WEBWAVE_REQUIRE(width >= 2 && height >= 2, "torus needs >= 2x2");
  UndirectedGraph g(width * height);
  auto id = [&](int x, int y) { return y * width + x; };
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      if (width > 2 || x + 1 < width) g.AddEdge(id(x, y), id((x + 1) % width, y));
      if (height > 2 || y + 1 < height) g.AddEdge(id(x, y), id(x, (y + 1) % height));
    }
  }
  return g;
}

UndirectedGraph MakeKAryNCubeGraph(int k, int n) {
  WEBWAVE_REQUIRE(k >= 2, "k must be >= 2");
  WEBWAVE_REQUIRE(n >= 1, "n must be >= 1");
  int total = 1;
  for (int i = 0; i < n; ++i) {
    WEBWAVE_REQUIRE(total <= 1'000'000 / k, "k-ary n-cube too large");
    total *= k;
  }
  UndirectedGraph g(total);
  // Node id encodes its coordinate vector in base k.  Every node links to
  // its +1 neighbor in each dimension; that enumerates each cycle edge
  // exactly once, except for k = 2 where both endpoints generate the same
  // pair (a 2-cycle collapses to a single edge).
  std::vector<int> stride(static_cast<std::size_t>(n), 1);
  for (int d = 1; d < n; ++d)
    stride[static_cast<std::size_t>(d)] = stride[static_cast<std::size_t>(d - 1)] * k;
  for (int v = 0; v < total; ++v) {
    for (int d = 0; d < n; ++d) {
      const int coord = (v / stride[static_cast<std::size_t>(d)]) % k;
      const int next = (coord + 1) % k;
      const int w = v + (next - coord) * stride[static_cast<std::size_t>(d)];
      if (k == 2 && w < v) continue;
      g.AddEdge(v, w);
    }
  }
  return g;
}

UndirectedGraph GraphFromTree(const RoutingTree& tree) {
  UndirectedGraph g(tree.size());
  for (NodeId v = 0; v < tree.size(); ++v)
    if (!tree.is_root(v)) g.AddEdge(v, tree.parent(v));
  return g;
}

DiffusionMatrix DiffusionMatrix::Uniform(const UndirectedGraph& graph,
                                         double alpha) {
  WEBWAVE_REQUIRE(alpha > 0, "alpha must be positive");
  WEBWAVE_REQUIRE(alpha * graph.MaxDegree() < 1.0 + 1e-12,
                  "alpha too large: diagonal would go negative");
  DiffusionMatrix m(graph.size());
  for (int i = 0; i < graph.size(); ++i) {
    double off = 0;
    for (const int j : graph.neighbors(i)) {
      m.data_[static_cast<std::size_t>(i) * m.n_ + j] = alpha;
      off += alpha;
    }
    m.data_[static_cast<std::size_t>(i) * m.n_ + i] = 1.0 - off;
  }
  return m;
}

DiffusionMatrix DiffusionMatrix::DegreeBased(const UndirectedGraph& graph) {
  DiffusionMatrix m(graph.size());
  for (int i = 0; i < graph.size(); ++i) {
    double off = 0;
    for (const int j : graph.neighbors(i)) {
      const double a = 1.0 / (1.0 + std::max(graph.degree(i), graph.degree(j)));
      m.data_[static_cast<std::size_t>(i) * m.n_ + j] = a;
      off += a;
    }
    m.data_[static_cast<std::size_t>(i) * m.n_ + i] = 1.0 - off;
  }
  return m;
}

std::vector<double> DiffusionMatrix::Apply(const std::vector<double>& x) const {
  WEBWAVE_REQUIRE(x.size() == static_cast<std::size_t>(n_), "size mismatch");
  std::vector<double> y(x.size(), 0.0);
  for (int i = 0; i < n_; ++i) {
    double acc = 0;
    const double* row = data_.data() + static_cast<std::size_t>(i) * n_;
    for (int j = 0; j < n_; ++j) acc += row[j] * x[static_cast<std::size_t>(j)];
    y[static_cast<std::size_t>(i)] = acc;
  }
  return y;
}

double DiffusionMatrix::SpectralGamma(int iterations) const {
  if (n_ == 1) return 0;
  // Power iteration orthogonal to the all-ones eigenvector (eigenvalue 1).
  // D is symmetric for our constructors, so this converges to the
  // second-largest |eigenvalue|.
  std::vector<double> x(static_cast<std::size_t>(n_));
  for (int i = 0; i < n_; ++i)
    x[static_cast<std::size_t>(i)] =
        std::sin(1.0 + 0.7 * i) + (i % 2 != 0 ? 0.3 : 0.0);
  auto deflate = [&](std::vector<double>& v) {
    double mean = 0;
    for (const double e : v) mean += e;
    mean /= static_cast<double>(n_);
    for (double& e : v) e -= mean;
  };
  deflate(x);
  double gamma = 0;
  for (int it = 0; it < iterations; ++it) {
    std::vector<double> y = Apply(x);
    deflate(y);
    double norm = 0;
    for (const double e : y) norm += e * e;
    norm = std::sqrt(norm);
    if (norm < 1e-300) return 0;
    // Rayleigh-style estimate of |λ₂| from the norm growth.
    double xnorm = 0;
    for (const double e : x) xnorm += e * e;
    xnorm = std::sqrt(xnorm);
    gamma = norm / xnorm;
    for (std::size_t i = 0; i < y.size(); ++i) y[i] /= norm;
    x = std::move(y);
  }
  return gamma;
}

double OptimalAlphaKAryNCube(int k, int n) {
  WEBWAVE_REQUIRE(k >= 2 && n >= 1, "invalid k-ary n-cube");
  // Laplacian eigenvalues of the k-ary n-cube are Σ_d 2(1 − cos(2π m_d/k)).
  const double pi = 3.14159265358979323846;
  const double mu_min = 2.0 * (1.0 - std::cos(2.0 * pi / k));
  // Max over a single dimension: m = floor(k/2).
  const double mu_dim_max =
      2.0 * (1.0 - std::cos(2.0 * pi * std::floor(k / 2.0) / k));
  const double mu_max = n * mu_dim_max;
  return 2.0 / (mu_min + mu_max);
}

DiffusionRun RunDiffusion(const DiffusionMatrix& matrix,
                          std::vector<double> initial, double tol,
                          int max_steps) {
  WEBWAVE_REQUIRE(initial.size() == static_cast<std::size_t>(matrix.size()),
                  "size mismatch");
  double total = 0;
  for (const double v : initial) total += v;
  const std::vector<double> uniform(initial.size(),
                                    total / static_cast<double>(initial.size()));
  DiffusionRun run;
  run.distances.push_back(EuclideanDistance(initial, uniform));
  std::vector<double> x = std::move(initial);
  for (int t = 0; t < max_steps; ++t) {
    if (run.distances.back() <= tol) {
      run.reached_tolerance = true;
      break;
    }
    x = matrix.Apply(x);
    run.distances.push_back(EuclideanDistance(x, uniform));
  }
  if (run.distances.back() <= tol) run.reached_tolerance = true;
  run.final_load = std::move(x);
  return run;
}

DiffusionRun RunAsyncDiffusion(const UndirectedGraph& graph, double alpha,
                               std::vector<double> initial,
                               const AsyncDiffusionOptions& options,
                               double tol, int max_steps) {
  WEBWAVE_REQUIRE(initial.size() == static_cast<std::size_t>(graph.size()),
                  "size mismatch");
  WEBWAVE_REQUIRE(alpha > 0 && alpha * graph.MaxDegree() < 1.0 + 1e-12,
                  "alpha violates the positive-diagonal condition");
  WEBWAVE_REQUIRE(options.activation > 0 && options.activation <= 1,
                  "activation probability in (0, 1]");
  WEBWAVE_REQUIRE(options.max_delay >= 0, "delay must be non-negative");
  Rng rng(options.seed);

  double total = 0;
  for (const double v : initial) total += v;
  const std::vector<double> uniform(
      initial.size(), total / static_cast<double>(initial.size()));

  // History ring for stale reads: history.front() is the current sweep.
  // Transfers are edge-atomic (the donor decides from its own current
  // value and a possibly stale view of the receiver, then both endpoints
  // are updated together), so total load is conserved *exactly* no matter
  // how stale the views are — the same discipline WebWave uses.
  std::deque<std::vector<double>> history = {initial};
  DiffusionRun run;
  run.distances.push_back(EuclideanDistance(initial, uniform));
  std::vector<double> x = std::move(initial);
  for (int t = 0; t < max_steps && run.distances.back() > tol; ++t) {
    for (int i = 0; i < graph.size(); ++i) {
      for (const int j : graph.neighbors(i)) {
        if (j < i) continue;  // each undirected edge considered once
        if (!rng.NextBernoulli(options.activation)) continue;
        const std::size_t di = static_cast<std::size_t>(rng.NextBelow(
            static_cast<std::uint64_t>(options.max_delay) + 1));
        const std::size_t dj = static_cast<std::size_t>(rng.NextBelow(
            static_cast<std::uint64_t>(options.max_delay) + 1));
        const double view_of_j =
            history[std::min(di, history.size() - 1)]
                   [static_cast<std::size_t>(j)];
        const double view_of_i =
            history[std::min(dj, history.size() - 1)]
                   [static_cast<std::size_t>(i)];
        double transfer = 0;  // positive: i -> j
        if (x[static_cast<std::size_t>(i)] > view_of_j) {
          transfer = alpha * (x[static_cast<std::size_t>(i)] - view_of_j);
          transfer = std::min(transfer, x[static_cast<std::size_t>(i)]);
        } else if (x[static_cast<std::size_t>(j)] > view_of_i) {
          transfer = -alpha * (x[static_cast<std::size_t>(j)] - view_of_i);
          transfer = std::max(transfer, -x[static_cast<std::size_t>(j)]);
        }
        x[static_cast<std::size_t>(i)] -= transfer;
        x[static_cast<std::size_t>(j)] += transfer;
      }
    }
    history.push_front(x);
    while (history.size() >
           static_cast<std::size_t>(options.max_delay) + 1)
      history.pop_back();
    run.distances.push_back(EuclideanDistance(x, uniform));
  }
  run.reached_tolerance = run.distances.back() <= tol;
  run.final_load = std::move(x);
  return run;
}

bool CybenkoBoundHolds(const DiffusionRun& run, double gamma, double slack) {
  const double d0 = run.distances.empty() ? 0 : run.distances.front();
  double bound = d0;
  for (std::size_t t = 1; t < run.distances.size(); ++t) {
    bound *= gamma;
    if (run.distances[t] > bound + slack * (1 + d0)) return false;
  }
  return true;
}

}  // namespace webwave
