#include "doc/placement.h"

#include <algorithm>

#include "core/webfold.h"
#include "util/check.h"

namespace webwave {

PlacementResult DerivePlacement(const RoutingTree& tree,
                                const DemandMatrix& demand) {
  WEBWAVE_REQUIRE(demand.node_count() == tree.size(),
                  "demand matrix does not match tree");
  const int docs = demand.doc_count();
  const WebFoldResult tlb = WebFold(tree, demand.NodeTotals());

  PlacementResult result;
  result.node_loads = tlb.load;
  result.quota.assign(static_cast<std::size_t>(tree.size()),
                      std::vector<double>(static_cast<std::size_t>(docs), 0.0));
  result.copies.assign(static_cast<std::size_t>(docs), {});
  result.copy_count.assign(static_cast<std::size_t>(docs), 1);  // home copy

  // Bottom-up: at each node the passing flow per document is its own
  // demand plus what children forwarded; the node claims its TLB load
  // from the hottest flows first, forwarding the rest.
  std::vector<std::vector<double>> fwd(
      static_cast<std::size_t>(tree.size()),
      std::vector<double>(static_cast<std::size_t>(docs), 0.0));
  for (const NodeId v : tree.postorder()) {
    std::vector<double> arrive(static_cast<std::size_t>(docs));
    for (DocId d = 0; d < docs; ++d)
      arrive[static_cast<std::size_t>(d)] = demand.at(v, d);
    for (const NodeId c : tree.children(v))
      for (DocId d = 0; d < docs; ++d)
        arrive[static_cast<std::size_t>(d)] +=
            fwd[static_cast<std::size_t>(c)][static_cast<std::size_t>(d)];

    std::vector<DocId> order(static_cast<std::size_t>(docs));
    for (DocId d = 0; d < docs; ++d) order[static_cast<std::size_t>(d)] = d;
    std::sort(order.begin(), order.end(), [&](DocId a, DocId b) {
      const double ra = arrive[static_cast<std::size_t>(a)];
      const double rb = arrive[static_cast<std::size_t>(b)];
      if (ra != rb) return ra > rb;
      return a < b;
    });
    double remaining = tlb.load[static_cast<std::size_t>(v)];
    for (const DocId d : order) {
      if (remaining <= 1e-12) break;
      const double take =
          std::min(remaining, arrive[static_cast<std::size_t>(d)]);
      if (take <= 1e-12) continue;
      result.quota[static_cast<std::size_t>(v)][static_cast<std::size_t>(d)] =
          take;
      arrive[static_cast<std::size_t>(d)] -= take;
      remaining -= take;
      result.copies[static_cast<std::size_t>(d)].push_back({v, take});
      if (!tree.is_root(v)) ++result.copy_count[static_cast<std::size_t>(d)];
    }
    WEBWAVE_ASSERT(remaining <= 1e-6 * (1 + tlb.load[static_cast<std::size_t>(v)]),
                   "TLB load exceeded the flow passing the node");
    fwd[static_cast<std::size_t>(v)] = std::move(arrive);
  }
  // The root absorbs everything left over (it holds all copies).
  for (DocId d = 0; d < docs; ++d)
    WEBWAVE_ASSERT(
        fwd[static_cast<std::size_t>(tree.root())][static_cast<std::size_t>(d)] <=
            1e-6 * (1 + demand.Total()),
        "flow escaped past the home server");
  return result;
}

}  // namespace webwave
