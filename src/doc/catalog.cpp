#include "doc/catalog.h"

#include "core/webwave_batch.h"
#include "util/check.h"

namespace webwave {

Catalog Catalog::MakeUniform(int doc_count, double size_kb) {
  WEBWAVE_REQUIRE(doc_count >= 1, "catalog needs at least one document");
  Catalog c;
  c.docs_.reserve(static_cast<std::size_t>(doc_count));
  for (DocId d = 0; d < doc_count; ++d)
    c.docs_.push_back({d, "doc-" + std::to_string(d), size_kb});
  return c;
}

Catalog Catalog::MakeLogNormal(int doc_count, double median_kb, double sigma,
                               std::uint64_t seed) {
  WEBWAVE_REQUIRE(doc_count >= 1, "catalog needs at least one document");
  // One shared draw (util/rng) keeps this kilobyte view and the store's
  // byte view (DocumentSizes::LogNormal) from ever disagreeing: whole
  // bytes divide 1024 exactly in double, so
  // DocumentSizes::FromCatalog round-trips these sizes bit for bit.
  Catalog c;
  c.docs_.reserve(static_cast<std::size_t>(doc_count));
  for (DocId d = 0; d < doc_count; ++d)
    c.docs_.push_back(
        {d, "doc-" + std::to_string(d),
         static_cast<double>(
             CounterLogNormalBytes(seed, d, median_kb * 1024.0, sigma)) /
             1024.0});
  return c;
}

const Document& Catalog::doc(DocId d) const {
  WEBWAVE_REQUIRE(d >= 0 && d < size(), "document id out of range");
  return docs_[static_cast<std::size_t>(d)];
}

DemandMatrix::DemandMatrix(int node_count, int doc_count)
    : nodes_(node_count),
      docs_(doc_count),
      rates_(static_cast<std::size_t>(node_count) *
                 static_cast<std::size_t>(doc_count),
             0.0) {
  WEBWAVE_REQUIRE(node_count >= 1 && doc_count >= 1, "empty demand matrix");
}

double DemandMatrix::at(NodeId v, DocId d) const {
  WEBWAVE_REQUIRE(v >= 0 && v < nodes_ && d >= 0 && d < docs_,
                  "demand index out of range");
  return rates_[static_cast<std::size_t>(v) * docs_ + d];
}

void DemandMatrix::set(NodeId v, DocId d, double rate) {
  WEBWAVE_REQUIRE(v >= 0 && v < nodes_ && d >= 0 && d < docs_,
                  "demand index out of range");
  WEBWAVE_REQUIRE(rate >= 0, "rates must be non-negative");
  rates_[static_cast<std::size_t>(v) * docs_ + d] = rate;
}

void DemandMatrix::add(NodeId v, DocId d, double rate) {
  set(v, d, at(v, d) + rate);
}

double DemandMatrix::NodeTotal(NodeId v) const {
  WEBWAVE_REQUIRE(v >= 0 && v < nodes_, "node out of range");
  double sum = 0;
  for (DocId d = 0; d < docs_; ++d)
    sum += rates_[static_cast<std::size_t>(v) * docs_ + d];
  return sum;
}

double DemandMatrix::DocTotal(DocId d) const {
  WEBWAVE_REQUIRE(d >= 0 && d < docs_, "doc out of range");
  double sum = 0;
  for (NodeId v = 0; v < nodes_; ++v)
    sum += rates_[static_cast<std::size_t>(v) * docs_ + d];
  return sum;
}

double DemandMatrix::Total() const {
  double sum = 0;
  for (const double r : rates_) sum += r;
  return sum;
}

std::vector<double> DemandMatrix::NodeTotals() const {
  std::vector<double> totals(static_cast<std::size_t>(nodes_));
  for (NodeId v = 0; v < nodes_; ++v) totals[static_cast<std::size_t>(v)] = NodeTotal(v);
  return totals;
}

std::vector<double> DemandMatrix::DocColumn(DocId d) const {
  WEBWAVE_REQUIRE(d >= 0 && d < docs_, "doc out of range");
  std::vector<double> column(static_cast<std::size_t>(nodes_));
  for (NodeId v = 0; v < nodes_; ++v)
    column[static_cast<std::size_t>(v)] =
        rates_[static_cast<std::size_t>(v) * docs_ + d];
  return column;
}

std::vector<std::vector<double>> DemandMatrix::DocColumns() const {
  std::vector<std::vector<double>> columns;
  columns.reserve(static_cast<std::size_t>(docs_));
  for (DocId d = 0; d < docs_; ++d) columns.push_back(DocColumn(d));
  return columns;
}

BatchWebWaveSimulator MakeCatalogBatch(const RoutingTree& tree,
                                       const DemandMatrix& demand,
                                       WebWaveOptions options) {
  WEBWAVE_REQUIRE(demand.node_count() == tree.size(),
                  "demand matrix does not match the tree");
  return BatchWebWaveSimulator(tree, demand.DocColumns(), options);
}

DemandMatrix LeafZipfDemand(const RoutingTree& tree, int doc_count,
                            double rate_per_leaf, double popularity_exponent,
                            Rng& rng) {
  DemandMatrix demand(tree.size(), doc_count);
  const ZipfDistribution zipf(doc_count, popularity_exponent);
  for (NodeId v = 0; v < tree.size(); ++v) {
    if (!tree.is_leaf(v) || tree.is_root(v)) continue;
    // Each leaf's interest profile is an independently permuted Zipf: hot
    // documents differ per region, as real client populations do.
    std::vector<DocId> order(static_cast<std::size_t>(doc_count));
    for (DocId d = 0; d < doc_count; ++d) order[static_cast<std::size_t>(d)] = d;
    rng.Shuffle(order);
    for (DocId rank = 0; rank < doc_count; ++rank)
      demand.add(v, order[static_cast<std::size_t>(rank)],
                 rate_per_leaf * zipf.pmf(rank));
  }
  return demand;
}

DemandMatrix UniformRandomDemand(const RoutingTree& tree, int doc_count,
                                 double max_rate, Rng& rng) {
  DemandMatrix demand(tree.size(), doc_count);
  for (NodeId v = 0; v < tree.size(); ++v)
    for (DocId d = 0; d < doc_count; ++d)
      demand.set(v, d, rng.NextDouble(0, max_rate));
  return demand;
}

DemandMatrix RotatingHotSpotDemand(const RoutingTree& tree, int doc_count,
                                   double base_rate, double hot_rate,
                                   double hot_fraction, double phase) {
  WEBWAVE_REQUIRE(phase >= 0 && phase < 1, "phase in [0,1)");
  WEBWAVE_REQUIRE(hot_fraction >= 0 && hot_fraction <= 1,
                  "hot fraction in [0,1]");
  WEBWAVE_REQUIRE(base_rate >= 0 && hot_rate >= 0, "rates non-negative");
  std::vector<NodeId> leaves;
  for (NodeId v = 0; v < tree.size(); ++v)
    if (tree.is_leaf(v) && !tree.is_root(v)) leaves.push_back(v);
  DemandMatrix demand(tree.size(), doc_count);
  if (leaves.empty()) return demand;

  const ZipfDistribution zipf(doc_count, 1.0);
  const std::size_t n_leaves = leaves.size();
  const std::size_t window = static_cast<std::size_t>(
      hot_fraction * static_cast<double>(n_leaves) + 0.5);
  const std::size_t start =
      static_cast<std::size_t>(phase * static_cast<double>(n_leaves));
  for (std::size_t i = 0; i < n_leaves; ++i) {
    // Hot iff within the circular window [start, start + window).
    const std::size_t offset = (i + n_leaves - start) % n_leaves;
    const double rate = offset < window ? hot_rate : base_rate;
    for (DocId d = 0; d < doc_count; ++d)
      demand.add(leaves[i], d, rate * zipf.pmf(d));
  }
  return demand;
}

DemandMatrix FlashCrowdDemand(const RoutingTree& tree, int doc_count,
                              double base_rate, double hot_rate,
                              DocId hot_doc, NodeId epicenter, Rng& rng) {
  WEBWAVE_REQUIRE(hot_doc >= 0 && hot_doc < doc_count, "hot doc out of range");
  DemandMatrix demand(tree.size(), doc_count);
  const ZipfDistribution zipf(doc_count, 1.0);
  for (NodeId v = 0; v < tree.size(); ++v)
    for (DocId rank = 0; rank < doc_count; ++rank)
      demand.add(v, rank, base_rate * zipf.pmf(rank) *
                              rng.NextDouble(0.5, 1.5));
  for (const NodeId v : tree.subtree(epicenter))
    demand.add(v, hot_doc, hot_rate);
  return demand;
}

}  // namespace webwave
