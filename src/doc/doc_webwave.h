// Document-level WebWave (§5.2): the diffusion protocol operating on real
// cache copies instead of infinitely divisible load.
//
// Every node holds a set of cached documents with a *service quota* per
// document: of the requests for d that arrive at the node (its own demand
// plus what its children forward), it serves up to the quota and forwards
// the rest toward the home server, which holds the authoritative copy of
// everything and absorbs whatever reaches it.  This realizes the paper's
// architecture: requests stumble on copies en route, no directory exists.
//
// The protocol per period, per edge (parent p, child c), with total loads
// L measured from the current flows:
//   * L_p > L_c: p delegates future requests to c, capped by what flows
//     through c (NSS) *and by the documents p actually caches* — p hands c
//     a copy of one or more of its cached documents and gives up the
//     corresponding quota.  When p caches none of the documents c
//     forwards, nothing moves: that is a potential barrier.
//   * L_c > L_p: c relinquishes quota; the freed requests travel up and
//     are absorbed by the first ancestor caching the document (ultimately
//     the home server).  A quota that reaches zero drops the copy.
//
// Tunneling (§5.2): a child underloaded w.r.t. its parent for more than
// `barrier_patience` periods with no load received fetches a copy of a
// document it is forwarding directly from the nearest ancestor that caches
// it, across the barrier.
#pragma once

#include <cstdint>
#include <vector>

#include "doc/barrier.h"
#include "doc/catalog.h"
#include "tree/routing_tree.h"

namespace webwave {

struct DocWebWaveOptions {
  // Per-edge diffusion parameter; 1/(1 + max degree) when <= 0.
  double alpha = -1;
  int barrier_patience = 2;     // paper: tunnel after more than two periods
  bool enable_tunneling = true;
  bool evict_at_zero_quota = true;
  double epsilon = 1e-9;
};

// A record of one tunneling event, for experiment output.
struct TunnelEvent {
  int period = 0;
  NodeId node = kNoNode;     // the underloaded child that tunneled
  NodeId barrier = kNoNode;  // its parent (the potential barrier)
  NodeId source = kNoNode;   // the ancestor the copy came from
  DocId doc = 0;
  double quota = 0;          // service quota installed with the copy
};

class DocWebWave {
 public:
  DocWebWave(const RoutingTree& tree, const DemandMatrix& demand,
             DocWebWaveOptions options = {});

  // Installs an initial cache copy with a service quota before the
  // protocol starts — used to reproduce prescribed placements like
  // Figure 7(a).  Must not target the root (which caches everything).
  void SeedCopy(NodeId v, DocId d, double quota);

  // One diffusion period: measure flows, exchange load with neighbors,
  // tunnel where barriers are detected.
  void Step();
  int period() const { return period_; }

  // Total served rate per node (the L vector).
  std::vector<double> NodeLoads() const;
  double ServedRate(NodeId v, DocId d) const;
  double ForwardedRate(NodeId v, DocId d) const;
  bool IsCached(NodeId v, DocId d) const;
  // Number of cache copies of d in the tree (including the home copy).
  int CopyCount(DocId d) const;

  const std::vector<TunnelEvent>& tunnel_events() const { return tunnels_; }
  int replication_count() const { return replications_; }
  int eviction_count() const { return evictions_; }

  // Euclidean distance from NodeLoads() to a target assignment.
  double DistanceTo(const std::vector<double>& target) const;

  // Steps until DistanceTo(target) <= tol or max_steps; returns the
  // distance trajectory (index 0 = initial state).
  std::vector<double> RunUntil(const std::vector<double>& target, double tol,
                               int max_steps);

  // Cache snapshot for barrier analysis: caches()[v][d].
  std::vector<std::vector<bool>> CacheSnapshot() const;
  std::vector<std::vector<double>> ForwardedSnapshot() const;

  // Invariants: flows conserve demand; quotas non-negative; only cached
  // documents are served; home caches everything.  Throws on violation.
  void CheckInvariants(double tol = 1e-6) const;

 private:
  double& quota(NodeId v, DocId d) {
    return quota_[static_cast<std::size_t>(v) * docs_ + d];
  }
  double quota_at(NodeId v, DocId d) const {
    return quota_[static_cast<std::size_t>(v) * docs_ + d];
  }
  double& served(NodeId v, DocId d) {
    return served_[static_cast<std::size_t>(v) * docs_ + d];
  }
  double served_at(NodeId v, DocId d) const {
    return served_[static_cast<std::size_t>(v) * docs_ + d];
  }
  double& fwd(NodeId v, DocId d) {
    return forwarded_[static_cast<std::size_t>(v) * docs_ + d];
  }
  double fwd_at(NodeId v, DocId d) const {
    return forwarded_[static_cast<std::size_t>(v) * docs_ + d];
  }

  // Recomputes arrive/served/forwarded flows bottom-up from quotas.
  void RecomputeFlows();
  double EdgeAlpha(NodeId parent, NodeId child) const;
  // Moves up to `amount` of quota from p to c across documents p caches
  // that flow through c; returns how much actually moved.
  double DelegateDown(NodeId p, NodeId c, double amount);
  // Relinquishes up to `amount` of c's quota upward; returns amount moved.
  double RelinquishUp(NodeId p, NodeId c, double amount);
  void Tunnel(NodeId k);

  const RoutingTree& tree_;
  const DemandMatrix& demand_;
  DocWebWaveOptions options_;
  int docs_;
  int period_ = 0;

  std::vector<double> quota_;      // [node][doc] intended service rate
  std::vector<double> served_;     // [node][doc] realized service rate
  std::vector<double> forwarded_;  // [node][doc] rate forwarded to parent
  std::vector<std::uint8_t> cached_;  // [node][doc]
  std::vector<double> loads_;      // per-node total served, after flows

  BarrierMonitor barrier_monitor_;
  std::vector<bool> received_this_period_;
  std::vector<TunnelEvent> tunnels_;
  int replications_ = 0;
  int evictions_ = 0;
};

}  // namespace webwave
