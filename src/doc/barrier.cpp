#include "doc/barrier.h"

#include "util/check.h"

namespace webwave {

BarrierMonitor::BarrierMonitor(int node_count, int patience)
    : patience_(patience), stalls_(static_cast<std::size_t>(node_count), 0) {
  WEBWAVE_REQUIRE(node_count >= 1, "need at least one node");
  WEBWAVE_REQUIRE(patience >= 0, "patience must be non-negative");
}

bool BarrierMonitor::Observe(NodeId node, bool underloaded_vs_parent,
                             bool received_load) {
  WEBWAVE_REQUIRE(node >= 0 &&
                      node < static_cast<NodeId>(stalls_.size()),
                  "node out of range");
  if (!underloaded_vs_parent || received_load) {
    stalls_[static_cast<std::size_t>(node)] = 0;
    return false;
  }
  return ++stalls_[static_cast<std::size_t>(node)] > patience_;
}

void BarrierMonitor::Reset(NodeId node) {
  WEBWAVE_REQUIRE(node >= 0 &&
                      node < static_cast<NodeId>(stalls_.size()),
                  "node out of range");
  stalls_[static_cast<std::size_t>(node)] = 0;
}

int BarrierMonitor::ConsecutiveStalls(NodeId node) const {
  WEBWAVE_REQUIRE(node >= 0 &&
                      node < static_cast<NodeId>(stalls_.size()),
                  "node out of range");
  return stalls_[static_cast<std::size_t>(node)];
}

bool IsPotentialBarrier(
    const RoutingTree& tree, NodeId j, NodeId k,
    const std::vector<double>& loads,
    const std::vector<std::vector<bool>>& caches,
    const std::vector<std::vector<double>>& forwarded_per_doc) {
  if (tree.is_root(j)) return false;  // j needs a parent i
  if (tree.parent(k) != j) return false;
  const NodeId i = tree.parent(j);
  const double lj = loads[static_cast<std::size_t>(j)];
  const double li = loads[static_cast<std::size_t>(i)];
  const double lk = loads[static_cast<std::size_t>(k)];
  if (!(lj >= li && li > lk)) return false;
  // Some sibling k' at least as loaded as j.
  bool has_loaded_sibling = false;
  for (const NodeId sibling : tree.children(j)) {
    if (sibling == k) continue;
    if (loads[static_cast<std::size_t>(sibling)] >= lj) {
      has_loaded_sibling = true;
      break;
    }
  }
  if (!has_loaded_sibling) return false;
  // j caches none of the documents k forwards.
  const auto& fwd_k = forwarded_per_doc[static_cast<std::size_t>(k)];
  const auto& cache_j = caches[static_cast<std::size_t>(j)];
  for (std::size_t d = 0; d < fwd_k.size(); ++d)
    if (fwd_k[d] > 1e-12 && cache_j[d]) return false;
  return true;
}

}  // namespace webwave
