// Potential-barrier detection (§5.2).
//
// A server j is a *potential barrier* when it has children k, k' and
// parent i with  L_k' >= L_j >= L_i > L_k  and j caches none of the
// documents requested by the underloaded child k's subtree: diffusion
// stalls, and j even hides the imbalance from i.
//
// Detection is purely local at the underloaded child: "a server k assumes
// that its parent j is a potential barrier if k remains underloaded,
// relative to j, for more than two periods, and no action is taken by j."
// The BarrierMonitor implements exactly that counter; the recovery —
// *tunneling*, fetching a document from across the barrier — lives in
// DocWebWave.
#pragma once

#include <vector>

#include "tree/routing_tree.h"

namespace webwave {

class BarrierMonitor {
 public:
  // patience: how many consecutive no-action underloaded periods a node
  // tolerates before declaring its parent a barrier (the paper uses 2,
  // i.e. tunneling starts on the third period).
  BarrierMonitor(int node_count, int patience);

  // Called once per diffusion period per node with whether the node was
  // underloaded relative to its parent and whether the parent shifted any
  // load to it this period.  Returns true when the node should tunnel.
  bool Observe(NodeId node, bool underloaded_vs_parent,
               bool received_load);

  // Resets a node's counter (after a successful tunnel).
  void Reset(NodeId node);

  int ConsecutiveStalls(NodeId node) const;

 private:
  int patience_;
  std::vector<int> stalls_;
};

// The static structural predicate of §5.2, used by tests and benches to
// assert that a configuration really contains a barrier: node j is a
// potential barrier w.r.t. underloaded child k iff
//   L_{k'} >= L_j >= L_{parent(j)} > L_k  for some sibling k', and
//   j caches none of the documents k forwards.
bool IsPotentialBarrier(const RoutingTree& tree, NodeId j, NodeId k,
                        const std::vector<double>& loads,
                        const std::vector<std::vector<bool>>& caches,
                        const std::vector<std::vector<double>>& forwarded_per_doc);

}  // namespace webwave
