// Documents, catalogs and per-(node, document) demand.
//
// The per-document machinery of §5.2: a home server publishes a set of
// immutable documents; every node of the routing tree spontaneously
// generates requests for particular documents.  The demand matrix fixes
// the rate of requests for document d originating at node v; its row sums
// are the spontaneous rates E_v of the rate-level model, which ties the
// document layer back to WebFold/TLB.
#pragma once

#include <string>
#include <vector>

#include "core/webwave_options.h"
#include "stats/zipf.h"
#include "tree/routing_tree.h"
#include "util/rng.h"

namespace webwave {

class BatchWebWaveSimulator;

using DocId = std::int32_t;

struct Document {
  DocId id = 0;
  std::string name;
  double size_kb = 8.0;  // transfer cost proxy for the packet-level sim
};

// The set of documents published by one home server.
class Catalog {
 public:
  static Catalog MakeUniform(int doc_count, double size_kb = 8.0);

  // Heavy-tailed per-document sizes: document d is median_kb ·
  // exp(sigma · z_d) kilobytes, z_d the same deterministic standard
  // normal DocumentSizes::LogNormal draws from (seed, d) — the two stay
  // byte-for-byte consistent, so a store built via
  // DocumentSizes::FromCatalog accounts exactly the catalog's sizes
  // (asserted by store_test).
  static Catalog MakeLogNormal(int doc_count, double median_kb, double sigma,
                               std::uint64_t seed);

  int size() const { return static_cast<int>(docs_.size()); }
  const Document& doc(DocId d) const;
  const std::vector<Document>& docs() const { return docs_; }

 private:
  std::vector<Document> docs_;
};

// Dense per-(node, document) spontaneous request rates.
class DemandMatrix {
 public:
  DemandMatrix(int node_count, int doc_count);

  int node_count() const { return nodes_; }
  int doc_count() const { return docs_; }

  double at(NodeId v, DocId d) const;
  void set(NodeId v, DocId d, double rate);
  void add(NodeId v, DocId d, double rate);

  // Row sum: the node's total spontaneous rate E_v.
  double NodeTotal(NodeId v) const;
  // Column sum: the document's global request rate.
  double DocTotal(DocId d) const;
  double Total() const;

  // E vector for the rate-level algorithms (WebFold, WebWaveSimulator).
  std::vector<double> NodeTotals() const;

  // Column d as a per-node spontaneous-rate vector: document d's own E
  // vector, the lane input of BatchWebWaveSimulator.
  std::vector<double> DocColumn(DocId d) const;
  // All columns at once — demand[d][v] for every document lane.
  std::vector<std::vector<double>> DocColumns() const;

 private:
  int nodes_;
  int docs_;
  std::vector<double> rates_;  // row-major [node][doc]
};

// Steps every document of a demand matrix as its own WebWave lane over the
// shared tree: the batched form of running one WebWaveSimulator per
// document (lane d is seeded options.seed + d; see webwave_batch.h).
BatchWebWaveSimulator MakeCatalogBatch(const RoutingTree& tree,
                                       const DemandMatrix& demand,
                                       WebWaveOptions options = {});

// Demand generators ------------------------------------------------------

// Every leaf generates `rate_per_leaf` total demand, split across documents
// by a Zipf(popularity_exponent) law.  Interior nodes generate nothing —
// the classic "clients at the edge" pattern of the paper's motivation.
DemandMatrix LeafZipfDemand(const RoutingTree& tree, int doc_count,
                            double rate_per_leaf, double popularity_exponent,
                            Rng& rng);

// Every node generates Uniform(0, max_rate) demand for each document.
DemandMatrix UniformRandomDemand(const RoutingTree& tree, int doc_count,
                                 double max_rate, Rng& rng);

// A flash crowd: baseline Zipf demand plus one document suddenly requested
// at `hot_rate` by every node of the subtree rooted at `epicenter`.
DemandMatrix FlashCrowdDemand(const RoutingTree& tree, int doc_count,
                              double base_rate, double hot_rate,
                              DocId hot_doc, NodeId epicenter, Rng& rng);

// A rotating hot spot: the demand state at `phase` of a diurnal-like cycle
// in which the hot region moves around the tree's leaves.  `phase` in
// [0, 1); the hot region is the leaves whose index falls in a window of
// `hot_fraction` of all leaves starting at phase; hot leaves request at
// `hot_rate`, the rest at `base_rate`, split over documents by Zipf(1).
// Calling this with increasing phases yields the erratic-demand sequence
// used by the churn experiments.
DemandMatrix RotatingHotSpotDemand(const RoutingTree& tree, int doc_count,
                                   double base_rate, double hot_rate,
                                   double hot_fraction, double phase);

}  // namespace webwave
