#include "doc/doc_webwave.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "stats/summary.h"
#include "util/check.h"

namespace webwave {

DocWebWave::DocWebWave(const RoutingTree& tree, const DemandMatrix& demand,
                       DocWebWaveOptions options)
    : tree_(tree),
      demand_(demand),
      options_(options),
      docs_(demand.doc_count()),
      quota_(static_cast<std::size_t>(tree.size()) * demand.doc_count(), 0.0),
      served_(quota_.size(), 0.0),
      forwarded_(quota_.size(), 0.0),
      cached_(quota_.size(), 0),
      loads_(static_cast<std::size_t>(tree.size()), 0.0),
      barrier_monitor_(tree.size(), options.barrier_patience),
      received_this_period_(static_cast<std::size_t>(tree.size()), false) {
  WEBWAVE_REQUIRE(demand.node_count() == tree.size(),
                  "demand matrix does not match tree");
  // The home server (root) holds the authoritative copy of every document.
  for (DocId d = 0; d < docs_; ++d)
    cached_[static_cast<std::size_t>(tree_.root()) * docs_ + d] = 1;
  RecomputeFlows();
}

void DocWebWave::SeedCopy(NodeId v, DocId d, double initial_quota) {
  WEBWAVE_REQUIRE(v >= 0 && v < tree_.size() && d >= 0 && d < docs_,
                  "index out of range");
  WEBWAVE_REQUIRE(!tree_.is_root(v), "the root already caches everything");
  WEBWAVE_REQUIRE(initial_quota >= 0, "quota must be non-negative");
  WEBWAVE_REQUIRE(period_ == 0, "seed placements before the first Step()");
  cached_[static_cast<std::size_t>(v) * docs_ + d] = 1;
  quota(v, d) = initial_quota;
  RecomputeFlows();
}

void DocWebWave::RecomputeFlows() {
  // Bottom-up: arrive = own demand + children's forwarded; non-root nodes
  // serve min(quota, arrive) of cached documents; the home server absorbs
  // everything that reaches it (it is the authoritative copy).
  for (const NodeId v : tree_.postorder()) {
    for (DocId d = 0; d < docs_; ++d) {
      double arrive = demand_.at(v, d);
      for (const NodeId c : tree_.children(v)) arrive += fwd_at(c, d);
      const bool has_copy =
          cached_[static_cast<std::size_t>(v) * docs_ + d] != 0;
      double serve = 0;
      if (tree_.is_root(v)) {
        serve = arrive;
      } else if (has_copy) {
        serve = std::min(quota_at(v, d), arrive);
      }
      served(v, d) = serve;
      fwd(v, d) = arrive - serve;
    }
  }
  for (NodeId v = 0; v < tree_.size(); ++v) {
    double total = 0;
    for (DocId d = 0; d < docs_; ++d) total += served_at(v, d);
    loads_[static_cast<std::size_t>(v)] = total;
  }
}

double DocWebWave::EdgeAlpha(NodeId parent, NodeId child) const {
  if (options_.alpha > 0) return options_.alpha;
  return 1.0 / (1.0 + std::max(tree_.degree(parent), tree_.degree(child)));
}

double DocWebWave::DelegateDown(NodeId p, NodeId c, double amount) {
  // Pick documents p caches whose requests flow through c, hottest flow
  // first, and hand over copies plus quota.
  std::vector<DocId> candidates;
  for (DocId d = 0; d < docs_; ++d) {
    if (cached_[static_cast<std::size_t>(p) * docs_ + d] == 0) continue;
    if (fwd_at(c, d) <= options_.epsilon) continue;
    const double avail = tree_.is_root(p) ? served_at(p, d) : quota_at(p, d);
    if (avail <= options_.epsilon) continue;
    candidates.push_back(d);
  }
  std::sort(candidates.begin(), candidates.end(), [&](DocId a, DocId b) {
    if (fwd_at(c, a) != fwd_at(c, b)) return fwd_at(c, a) > fwd_at(c, b);
    return a < b;
  });
  double moved = 0;
  for (const DocId d : candidates) {
    if (moved >= amount - options_.epsilon) break;
    // Quotas were tightened to realized service at the start of the
    // period and are updated incrementally here, so a node that both
    // receives and gives quota within one period keeps its books straight.
    const double parent_available =
        tree_.is_root(p) ? served_at(p, d) : quota_at(p, d);
    const double delta =
        std::min({amount - moved, fwd_at(c, d), parent_available});
    if (delta <= options_.epsilon) continue;
    if (cached_[static_cast<std::size_t>(c) * docs_ + d] == 0) {
      cached_[static_cast<std::size_t>(c) * docs_ + d] = 1;
      ++replications_;
    }
    quota(c, d) += delta;
    if (!tree_.is_root(p)) {
      // The home server's quota is implicit (it absorbs); only interior
      // caches track explicit quotas.
      quota(p, d) = std::max(0.0, quota_at(p, d) - delta);
      if (options_.evict_at_zero_quota &&
          quota_at(p, d) <= options_.epsilon) {
        cached_[static_cast<std::size_t>(p) * docs_ + d] = 0;
        quota(p, d) = 0;
        ++evictions_;
      }
    }
    moved += delta;
  }
  return moved;
}

double DocWebWave::RelinquishUp(NodeId p, NodeId c, double amount) {
  // The child gives up quota, most-served documents first; freed requests
  // flow toward the home server.  If the parent caches the document it
  // raises its own quota to absorb them en route.
  std::vector<DocId> candidates;
  for (DocId d = 0; d < docs_; ++d)
    if (quota_at(c, d) > options_.epsilon) candidates.push_back(d);
  std::sort(candidates.begin(), candidates.end(), [&](DocId a, DocId b) {
    if (quota_at(c, a) != quota_at(c, b))
      return quota_at(c, a) > quota_at(c, b);
    return a < b;
  });
  double moved = 0;
  for (const DocId d : candidates) {
    if (moved >= amount - options_.epsilon) break;
    const double delta = std::min(amount - moved, quota_at(c, d));
    if (delta <= options_.epsilon) continue;
    quota(c, d) = std::max(0.0, quota_at(c, d) - delta);
    if (options_.evict_at_zero_quota && quota_at(c, d) <= options_.epsilon) {
      cached_[static_cast<std::size_t>(c) * docs_ + d] = 0;
      quota(c, d) = 0;
      ++evictions_;
    }
    if (!tree_.is_root(p) &&
        cached_[static_cast<std::size_t>(p) * docs_ + d] != 0) {
      quota(p, d) += delta;
    }
    moved += delta;
  }
  return moved;
}

void DocWebWave::Tunnel(NodeId k) {
  // "Server k identifies one or more documents for which it is forwarding
  // requests to its parent, and requests them directly."  Pick the
  // document k forwards at the highest rate; when k does not yet hold a
  // copy, fetch it from the nearest ancestor caching it — across the
  // barrier parent.  When k already holds the copy (a previous tunnel),
  // the stalled diffusion is repaired by raising k's own service quota on
  // the passing flow.
  DocId best = -1;
  for (DocId d = 0; d < docs_; ++d) {
    if (fwd_at(k, d) <= options_.epsilon) continue;
    if (best < 0 || fwd_at(k, d) > fwd_at(k, best)) best = d;
  }
  if (best < 0) return;  // nothing flows past k at all

  const NodeId p = tree_.parent(k);
  const double gap = loads_[static_cast<std::size_t>(p)] -
                     loads_[static_cast<std::size_t>(k)];
  const double quota_grant =
      std::min(fwd_at(k, best), EdgeAlpha(p, k) * gap);
  if (quota_grant <= options_.epsilon) return;

  if (cached_[static_cast<std::size_t>(k) * docs_ + best] == 0) {
    NodeId source = kNoNode;
    for (NodeId a = tree_.parent(k); a != kNoNode; a = tree_.parent(a)) {
      if (cached_[static_cast<std::size_t>(a) * docs_ + best] != 0) {
        source = a;
        break;
      }
    }
    WEBWAVE_ASSERT(source != kNoNode, "home server must cache everything");
    cached_[static_cast<std::size_t>(k) * docs_ + best] = 1;
    ++replications_;
    tunnels_.push_back({period_, k, p, source, best, quota_grant});
  }
  quota(k, best) += quota_grant;
  barrier_monitor_.Reset(k);
  received_this_period_[static_cast<std::size_t>(k)] = true;
}

void DocWebWave::Step() {
  RecomputeFlows();
  std::fill(received_this_period_.begin(), received_this_period_.end(),
            false);

  // Tighten quotas to the service actually realized this period: quota
  // exchanges below are then exact increments, and a node that both
  // receives and gives within one period keeps consistent books.
  for (NodeId v = 0; v < tree_.size(); ++v) {
    if (tree_.is_root(v)) continue;
    for (DocId d = 0; d < docs_; ++d)
      if (cached_[static_cast<std::size_t>(v) * docs_ + d] != 0)
        quota(v, d) = served_at(v, d);
  }

  // Snapshot the loads the decisions are based on (synchronous rounds).
  const std::vector<double> loads = loads_;

  for (NodeId c = 0; c < tree_.size(); ++c) {
    if (tree_.is_root(c)) continue;
    const NodeId p = tree_.parent(c);
    const double lp = loads[static_cast<std::size_t>(p)];
    const double lc = loads[static_cast<std::size_t>(c)];
    const double alpha = EdgeAlpha(p, c);
    if (lp > lc + options_.epsilon) {
      const double want = alpha * (lp - lc);
      const double moved = DelegateDown(p, c, want);
      // "No action is taken by j" (§5.2): a trickle far below the
      // prescribed diffusion shift does not count as action, or a barrier
      // leaking a trifle would never be detected.
      if (moved > 0.25 * want)
        received_this_period_[static_cast<std::size_t>(c)] = true;
    } else if (lc > lp + options_.epsilon) {
      RelinquishUp(p, c, alpha * (lc - lp));
    }
  }

  RecomputeFlows();

  // Barrier detection and tunneling, on the post-exchange state.
  if (options_.enable_tunneling) {
    for (NodeId k = 0; k < tree_.size(); ++k) {
      if (tree_.is_root(k)) continue;
      const NodeId p = tree_.parent(k);
      const bool underloaded =
          loads_[static_cast<std::size_t>(k)] <
          loads_[static_cast<std::size_t>(p)] - options_.epsilon;
      if (barrier_monitor_.Observe(
              k, underloaded,
              received_this_period_[static_cast<std::size_t>(k)])) {
        Tunnel(k);
      }
    }
    RecomputeFlows();
  }
  ++period_;
}

std::vector<double> DocWebWave::NodeLoads() const { return loads_; }

double DocWebWave::ServedRate(NodeId v, DocId d) const {
  return served_at(v, d);
}

double DocWebWave::ForwardedRate(NodeId v, DocId d) const {
  return fwd_at(v, d);
}

bool DocWebWave::IsCached(NodeId v, DocId d) const {
  WEBWAVE_REQUIRE(v >= 0 && v < tree_.size() && d >= 0 && d < docs_,
                  "index out of range");
  return cached_[static_cast<std::size_t>(v) * docs_ + d] != 0;
}

int DocWebWave::CopyCount(DocId d) const {
  int count = 0;
  for (NodeId v = 0; v < tree_.size(); ++v)
    if (cached_[static_cast<std::size_t>(v) * docs_ + d] != 0) ++count;
  return count;
}

double DocWebWave::DistanceTo(const std::vector<double>& target) const {
  return EuclideanDistance(loads_, target);
}

std::vector<double> DocWebWave::RunUntil(const std::vector<double>& target,
                                         double tol, int max_steps) {
  std::vector<double> trajectory = {DistanceTo(target)};
  for (int s = 0; s < max_steps && trajectory.back() > tol; ++s) {
    Step();
    trajectory.push_back(DistanceTo(target));
  }
  return trajectory;
}

std::vector<std::vector<bool>> DocWebWave::CacheSnapshot() const {
  std::vector<std::vector<bool>> snap(static_cast<std::size_t>(tree_.size()));
  for (NodeId v = 0; v < tree_.size(); ++v) {
    snap[static_cast<std::size_t>(v)].resize(static_cast<std::size_t>(docs_));
    for (DocId d = 0; d < docs_; ++d)
      snap[static_cast<std::size_t>(v)][static_cast<std::size_t>(d)] =
          cached_[static_cast<std::size_t>(v) * docs_ + d] != 0;
  }
  return snap;
}

std::vector<std::vector<double>> DocWebWave::ForwardedSnapshot() const {
  std::vector<std::vector<double>> snap(static_cast<std::size_t>(tree_.size()));
  for (NodeId v = 0; v < tree_.size(); ++v) {
    snap[static_cast<std::size_t>(v)].resize(static_cast<std::size_t>(docs_));
    for (DocId d = 0; d < docs_; ++d)
      snap[static_cast<std::size_t>(v)][static_cast<std::size_t>(d)] =
          fwd_at(v, d);
  }
  return snap;
}

void DocWebWave::CheckInvariants(double tol) const {
  const double total_demand = demand_.Total();
  double total_served = 0;
  for (NodeId v = 0; v < tree_.size(); ++v) {
    for (DocId d = 0; d < docs_; ++d) {
      WEBWAVE_ASSERT(quota_at(v, d) >= -tol, "negative quota");
      WEBWAVE_ASSERT(served_at(v, d) >= -tol, "negative served rate");
      WEBWAVE_ASSERT(fwd_at(v, d) >= -tol, "negative forwarded rate (NSS)");
      if (served_at(v, d) > tol)
        WEBWAVE_ASSERT(cached_[static_cast<std::size_t>(v) * docs_ + d] != 0,
                       "serving a document without a cache copy");
      total_served += served_at(v, d);
    }
  }
  for (DocId d = 0; d < docs_; ++d) {
    WEBWAVE_ASSERT(
        cached_[static_cast<std::size_t>(tree_.root()) * docs_ + d] != 0,
        "home server must keep the authoritative copy");
    WEBWAVE_ASSERT(fwd_at(tree_.root(), d) <= tol,
                   "the root must absorb all remaining requests");
  }
  WEBWAVE_ASSERT(
      std::abs(total_served - total_demand) <= tol * (1 + total_demand),
      "flow conservation violated");
}

}  // namespace webwave
