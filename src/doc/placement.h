// Offline copy placement implied by TLB (§7).
//
// "WebWave implicitly determines the number and placement of cache copies
// as well as the number of requests allocated to each copy."  This module
// makes that explicit: given the per-(node, document) demand, it computes
// the TLB assignment of node loads (WebFold on the row sums) and then
// realizes it document-by-document — every node is allocated service
// quotas over the documents actually flowing through it, bottom-up, so
// per-document NSS holds by construction.  The result is, for each
// document, the set of nodes that must hold a copy and the request rate
// allocated to each copy.
//
// The allocation is the fewest-copies greedy: each node fills its TLB
// load from its hottest passing documents first, which concentrates each
// document's copies where its demand flows.
#pragma once

#include <vector>

#include "doc/catalog.h"
#include "tree/routing_tree.h"

namespace webwave {

struct CopyAssignment {
  NodeId node = kNoNode;
  double rate = 0;  // requests/sec this copy serves
};

struct PlacementResult {
  // quota[v][d]: the service rate node v is allocated for document d
  // (> 0 implies v holds a copy; the home server holds everything).
  std::vector<std::vector<double>> quota;
  // For each document, its copies (excluding zero-rate home copies).
  std::vector<std::vector<CopyAssignment>> copies;
  // The TLB node loads this placement realizes.
  std::vector<double> node_loads;
  // Total copies per document (including the home's authoritative copy).
  std::vector<int> copy_count;
};

// Computes the TLB-realizing placement.  Throws on mismatched sizes.
PlacementResult DerivePlacement(const RoutingTree& tree,
                                const DemandMatrix& demand);

}  // namespace webwave
