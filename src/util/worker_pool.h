// A small reusable worker pool for data-parallel sweeps with
// deterministic work assignment.
//
// The batched WebWave simulator steps millions of independent document
// lanes per diffusion period; the sweep parallelizes trivially, but the
// results must stay bit-identical to the serial path at any thread count
// (the equivalence guarantees of webwave_batch.h are exact, not
// approximate).  ParallelFor therefore uses a *static* partition: the index
// range is split into thread_count() contiguous blocks by pure arithmetic
// (Partition below), so which worker touches which indices never depends on
// scheduling, and workers that write only to their own indices' state
// produce the same bytes in any interleaving.
//
// The pool keeps its threads alive between calls (a batch step at 10⁶
// nodes runs many sweeps per second; re-spawning threads each time would
// dominate), parks them on a condition variable, and runs block 0 on the
// calling thread so a single-threaded pool degrades to a plain loop with
// no synchronization at all.
//
// The callback may throw: the first exception raised in any block is
// captured and rethrown on the submitting thread after every worker has
// finished its block, so a throwing sweep behaves like a throwing serial
// loop instead of terminating the process.  Later exceptions of the same
// sweep are discarded ("first" is first-recorded; with one thread it is
// the serial loop's first, with more it depends on timing — callers that
// need a specific exception should still validate inputs up front, see
// BatchWebWaveSimulator::ApplyDemandEvents).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace webwave {

class WorkerPool {
 public:
  // The sweep callback: fn(worker, begin, end) processes indices
  // [begin, end); `worker` in [0, thread_count()) identifies the block and
  // may be used to index per-worker scratch.
  using Task = std::function<void(int worker, std::size_t begin,
                                  std::size_t end)>;

  // threads <= 0 picks one per hardware thread.  A pool of 1 spawns no
  // threads.
  explicit WorkerPool(int threads = 0);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int thread_count() const { return threads_; }

  // Runs fn over the static partition of [0, count) into thread_count()
  // blocks and returns when every block is done.  Serial when the pool has
  // one thread or the range is empty.  If fn throws in any block, the
  // first captured exception is rethrown here once the sweep has drained
  // (see file comment).  Not reentrant: fn must not call ParallelFor on
  // the same pool.
  void ParallelFor(std::size_t count, const Task& fn);

  // Block `part` of the deterministic partition of [0, count) into `parts`
  // contiguous blocks: [count*part/parts, count*(part+1)/parts).  Block
  // sizes differ by at most one and the union is exactly [0, count).
  static void Partition(std::size_t count, int parts, int part,
                        std::size_t* begin, std::size_t* end);

 private:
  void WorkerMain(int worker);

  int threads_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  const Task* task_ = nullptr;   // valid while a sweep is in flight
  std::size_t task_count_ = 0;   // index range of the current sweep
  std::uint64_t generation_ = 0; // bumped once per sweep
  int pending_ = 0;              // workers still running the current sweep
  bool stopping_ = false;
  std::exception_ptr first_error_;  // first exception of the current sweep
};

}  // namespace webwave
