#include "util/ascii.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/check.h"

namespace webwave {

AsciiTable::AsciiTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  WEBWAVE_REQUIRE(!header_.empty(), "table needs at least one column");
}

void AsciiTable::AddRow(std::vector<std::string> cells) {
  WEBWAVE_REQUIRE(cells.size() == header_.size(),
                  "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string AsciiTable::Num(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

std::string AsciiTable::Int(long long v) { return std::to_string(v); }

std::string AsciiTable::Render() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto emit_row = [&](std::ostringstream& os,
                      const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      if (c == 0) {
        os << row[c] << std::string(width[c] - row[c].size(), ' ');
      } else {
        os << std::string(width[c] - row[c].size(), ' ') << row[c];
      }
    }
    os << '\n';
  };

  std::ostringstream os;
  emit_row(os, header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c)
    total += width[c] + (c == 0 ? 0 : 2);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(os, row);
  return os.str();
}

std::string AsciiBarChart(
    const std::vector<std::pair<std::string, double>>& rows, int width) {
  double max_value = 0;
  std::size_t label_width = 0;
  for (const auto& [label, value] : rows) {
    max_value = std::max(max_value, value);
    label_width = std::max(label_width, label.size());
  }
  std::ostringstream os;
  for (const auto& [label, value] : rows) {
    const int bar =
        max_value > 0
            ? static_cast<int>(std::lround(value / max_value * width))
            : 0;
    os << label << std::string(label_width - label.size(), ' ') << "  "
       << AsciiTable::Num(value, 4) << "  " << std::string(bar, '#') << '\n';
  }
  return os.str();
}

}  // namespace webwave
