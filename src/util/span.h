// A minimal read-only contiguous view, the C++17 stand-in for
// std::span<const T>.
//
// Batch APIs (ApplyDemandEvents, the churn schedules) hand around event
// lists that callers keep in vectors, arrays or sub-ranges; Span lets the
// simulators accept any of them without copying and without committing the
// public headers to one container type.  View semantics: the caller must
// keep the underlying storage alive for the duration of the call.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <type_traits>
#include <vector>

namespace webwave {

template <typename T>
class Span {
 public:
  constexpr Span() = default;
  constexpr Span(const T* data, std::size_t size) : data_(data), size_(size) {}
  // Vectors always hold the cv-unqualified element type; stripping the
  // qualifier here lets Span<const T> view a std::vector<T> directly and
  // keeps std::vector<const T> (ill-formed) from ever being instantiated.
  Span(const std::vector<typename std::remove_cv<T>::type>& v)
      : data_(v.data()), size_(v.size()) {}
  // Braced literals ({{0, 3, 1.5}, ...}); the list lives until the end of
  // the full expression, long enough for any call taking a Span argument —
  // the only supported use.  GCC warns that the array's lifetime is not
  // extended, which is exactly the view contract stated above, so the
  // warning is silenced rather than the constructor removed.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Winit-list-lifetime"
#endif
  constexpr Span(std::initializer_list<T> il)
      : data_(il.begin()), size_(il.size()) {}
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif
  template <std::size_t N>
  constexpr Span(const T (&array)[N]) : data_(array), size_(N) {}

  constexpr const T* data() const { return data_; }
  constexpr std::size_t size() const { return size_; }
  constexpr bool empty() const { return size_ == 0; }
  constexpr const T& operator[](std::size_t i) const { return data_[i]; }
  constexpr const T* begin() const { return data_; }
  constexpr const T* end() const { return data_ + size_; }

 private:
  const T* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace webwave
