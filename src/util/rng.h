// Deterministic pseudo-random number generation.
//
// Every randomized component in webwave takes an explicit seed so that
// simulations, tests and benchmarks are exactly reproducible across runs
// and platforms.  The generator is xoshiro256++ seeded via SplitMix64, a
// small, fast, well-tested combination with 256 bits of state; we do not
// use std::mt19937 because its distributions are not portable across
// standard-library implementations.
#pragma once

#include <cstdint>
#include <vector>

namespace webwave {

// SplitMix64 step; used for seeding and as a cheap stateless mixer.
std::uint64_t SplitMix64(std::uint64_t& state);

// One uniform double in [0, 1) as a pure function of a counter: the
// SplitMix64 finalizer scaled to 53 bits.  The counter-based determinism
// primitive of the serving layer — request-stream draws, token dither
// phases and thinning draws all reduce to this, so they are identical
// under any batching or threading.
inline double CounterUnitDouble(std::uint64_t counter) {
  return static_cast<double>(SplitMix64(counter) >> 11) * 0x1.0p-53;
}

// A standard normal as a pure function of a counter: Box–Muller over two
// counter-hashed uniforms.  The heavy-tailed size models build on this.
double CounterNormal(std::uint64_t counter);

// One lognormal byte size as a pure function of (seed, item):
// round(median · exp(sigma · z)) clamped to >= 1 byte.  The single
// definition both the catalog's kilobyte view (Catalog::MakeLogNormal)
// and the store's byte view (DocumentSizes::LogNormal) draw through, so
// the two can never disagree.
std::uint64_t CounterLogNormalBytes(std::uint64_t seed, std::int64_t item,
                                    double median_bytes, double sigma);

// xoshiro256++ generator with portable, explicitly-seeded behaviour.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  // Raw 64 uniformly distributed bits.
  std::uint64_t Next();

  // Uniform integer in [0, bound); bound must be positive.  Uses rejection
  // sampling, so the result is exactly uniform.
  std::uint64_t NextBelow(std::uint64_t bound);

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t NextInt(std::int64_t lo, std::int64_t hi);

  // Uniform double in [0, 1) with 53 bits of precision.
  double NextDouble();

  // Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  // Standard exponential variate with the given rate (mean 1/rate).
  double NextExponential(double rate);

  // true with probability p (clamped to [0, 1]).
  bool NextBernoulli(double p);

  // Poisson variate with the given mean (Knuth for small means, normal
  // approximation with rejection for large ones).
  int NextPoisson(double mean);

  // Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(NextBelow(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  // A new generator seeded from this one's stream; use to give independent
  // deterministic streams to sub-components.
  Rng Fork();

 private:
  std::uint64_t s_[4];
};

}  // namespace webwave
