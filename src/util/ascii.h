// Plain-text rendering helpers for examples and bench binaries.
//
// Bench binaries reproduce the paper's figures as aligned text tables and
// ASCII trees; keeping the formatting in one place makes their output
// uniform and diffable.
#pragma once

#include <string>
#include <vector>

namespace webwave {

// A simple aligned text table.  Columns are right-aligned except the first,
// which is left-aligned (row labels).
class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);

  // Convenience: formats doubles with the given precision.
  static std::string Num(double v, int precision = 4);
  static std::string Int(long long v);

  std::string Render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Renders one line per value: a label, the numeric value, and a
// proportional bar — used for convergence plots in terminal output.
std::string AsciiBarChart(const std::vector<std::pair<std::string, double>>& rows,
                          int width = 50);

}  // namespace webwave
