#include "util/rng.h"

#include <cmath>

#include "util/check.h"

namespace webwave {

std::uint64_t SplitMix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  // xoshiro256++ must not be seeded with all-zero state; SplitMix64 of any
  // seed (including 0) avoids that.
  std::uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::NextBelow(std::uint64_t bound) {
  WEBWAVE_REQUIRE(bound > 0, "NextBelow bound must be positive");
  // Rejection sampling over the largest multiple of bound below 2^64.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::NextInt(std::int64_t lo, std::int64_t hi) {
  WEBWAVE_REQUIRE(lo <= hi, "NextInt requires lo <= hi");
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(Next());  // full range
  return lo + static_cast<std::int64_t>(NextBelow(span));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  WEBWAVE_REQUIRE(lo <= hi, "NextDouble requires lo <= hi");
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextExponential(double rate) {
  WEBWAVE_REQUIRE(rate > 0, "exponential rate must be positive");
  // Avoid log(0): NextDouble() is in [0,1), so 1 - NextDouble() is in (0,1].
  return -std::log(1.0 - NextDouble()) / rate;
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0) return false;
  if (p >= 1) return true;
  return NextDouble() < p;
}

int Rng::NextPoisson(double mean) {
  WEBWAVE_REQUIRE(mean >= 0, "Poisson mean must be non-negative");
  if (mean == 0) return 0;
  if (mean < 30) {
    // Knuth's product-of-uniforms method.
    const double limit = std::exp(-mean);
    double product = NextDouble();
    int count = 0;
    while (product > limit) {
      ++count;
      product *= NextDouble();
    }
    return count;
  }
  // Normal approximation with continuity correction, clamped at zero.
  // Adequate for the simulation workloads (mean >= 30 ⇒ skew is small).
  const double u1 = 1.0 - NextDouble();
  const double u2 = NextDouble();
  const double z =
      std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  const double value = mean + std::sqrt(mean) * z + 0.5;
  return value < 0 ? 0 : static_cast<int>(value);
}

Rng Rng::Fork() { return Rng(Next()); }

double CounterNormal(std::uint64_t counter) {
  const double u1 = CounterUnitDouble(counter * 2 + 1);
  const double u2 = CounterUnitDouble(counter * 2 + 2);
  // 1 - u1 keeps the log argument in (0, 1]; u1 is in [0, 1).
  return std::sqrt(-2.0 * std::log(1.0 - u1)) *
         std::cos(6.283185307179586 * u2);
}

std::uint64_t CounterLogNormalBytes(std::uint64_t seed, std::int64_t item,
                                    double median_bytes, double sigma) {
  const double z = CounterNormal(seed * 0x9e3779b97f4a7c15ULL +
                                 static_cast<std::uint64_t>(item));
  const double b = median_bytes * std::exp(sigma * z);
  const long long rounded = std::llround(b);
  return rounded < 1 ? 1 : static_cast<std::uint64_t>(rounded);
}

}  // namespace webwave
