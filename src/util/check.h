// Error-handling helpers shared by every webwave module.
//
// Precondition violations throw std::invalid_argument, broken internal
// invariants throw std::logic_error.  Both macros evaluate their condition
// exactly once and embed the failing expression and source location in the
// exception message, so test failures and misuse of the public API produce
// actionable diagnostics instead of undefined behaviour.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace webwave {

namespace detail {

[[noreturn]] inline void ThrowRequire(const char* expr, const char* file,
                                      int line, const std::string& what) {
  std::ostringstream os;
  os << "requirement failed: " << expr << " at " << file << ":" << line;
  if (!what.empty()) os << " — " << what;
  throw std::invalid_argument(os.str());
}

[[noreturn]] inline void ThrowInvariant(const char* expr, const char* file,
                                        int line, const std::string& what) {
  std::ostringstream os;
  os << "invariant violated: " << expr << " at " << file << ":" << line;
  if (!what.empty()) os << " — " << what;
  throw std::logic_error(os.str());
}

}  // namespace detail

// Validates a caller-supplied argument.
#define WEBWAVE_REQUIRE(cond, what)                                        \
  do {                                                                     \
    if (!(cond))                                                           \
      ::webwave::detail::ThrowRequire(#cond, __FILE__, __LINE__, (what));  \
  } while (0)

// Validates an internal invariant that callers cannot break through the
// public API; firing indicates a bug in webwave itself.
#define WEBWAVE_ASSERT(cond, what)                                          \
  do {                                                                      \
    if (!(cond))                                                            \
      ::webwave::detail::ThrowInvariant(#cond, __FILE__, __LINE__, (what)); \
  } while (0)

}  // namespace webwave
