// Flat JSON emission for the standalone benches.
//
// micro_benchmarks gets JSON for free from google-benchmark, but the
// figure/table benches are plain executables; CI wants their numbers as
// machine-readable artifacts (BENCH_*.json) so per-PR perf regressions are
// visible without parsing ASCII tables.  One BenchJson holds a list of
// flat records (string/number fields, insertion order preserved); Write
// renders {"bench": ..., "runs": [...]}.  Numbers print with enough digits
// to round-trip a double; strings are fully escaped (quotes, backslashes,
// all control bytes) and non-finite numbers render as null — JSON has no
// NaN/Inf, and one stray "inf" would make a whole CI artifact unparseable.
#pragma once

#include <cmath>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace webwave {

class BenchJson {
 public:
  explicit BenchJson(std::string bench_name)
      : bench_name_(std::move(bench_name)) {}

  // Starts a new record; subsequent Add calls fill it.
  void BeginRun() { runs_.emplace_back(); }

  void Add(const std::string& key, double value) {
    if (!std::isfinite(value)) {
      AddRaw(key, "null");  // JSON has no NaN or Infinity
      return;
    }
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", value);
    AddRaw(key, buf);
  }
  void Add(const std::string& key, long long value) {
    AddRaw(key, std::to_string(value));
  }
  void Add(const std::string& key, int value) {
    AddRaw(key, std::to_string(value));
  }
  void Add(const std::string& key, const std::string& value) {
    AddRaw(key, Quote(value));
  }

  std::string Render() const {
    std::string out = "{\n  \"bench\": " + Quote(bench_name_) +
                      ",\n  \"runs\": [\n";
    for (std::size_t r = 0; r < runs_.size(); ++r) {
      out += "    {";
      const auto& run = runs_[r];
      for (std::size_t f = 0; f < run.size(); ++f) {
        out += Quote(run[f].first) + ": " + run[f].second;
        if (f + 1 < run.size()) out += ", ";
      }
      out += r + 1 < runs_.size() ? "},\n" : "}\n";
    }
    out += "  ]\n}\n";
    return out;
  }

  // Writes the document to `path`; returns false on I/O failure.
  bool WriteFile(const std::string& path) const {
    return WriteString(path, Render());
  }

  std::size_t run_count() const { return runs_.size(); }

  // Renders run `r` as one self-contained single-line object — the
  // JSON-lines record shape {"bench": ..., fields...} used by the
  // per-epoch timeline artifacts (obs/timeline.h).
  std::string RenderLine(std::size_t r) const {
    std::string out = "{\"bench\": " + Quote(bench_name_);
    for (const auto& field : runs_[r]) {
      out += ", " + Quote(field.first) + ": " + field.second;
    }
    out += "}";
    return out;
  }

  // Writes one record per line (JSON-lines); returns false on I/O failure.
  bool WriteLines(const std::string& path) const {
    std::string doc;
    for (std::size_t r = 0; r < runs_.size(); ++r) {
      doc += RenderLine(r);
      doc += '\n';
    }
    return WriteString(path, doc);
  }

 private:
  using Record = std::vector<std::pair<std::string, std::string>>;

  static bool WriteString(const std::string& path, const std::string& doc) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
    return std::fclose(f) == 0 && ok;
  }

  void AddRaw(const std::string& key, std::string json_value) {
    if (runs_.empty()) runs_.emplace_back();
    runs_.back().emplace_back(key, std::move(json_value));
  }

  static std::string Quote(const std::string& s) {
    std::string out = "\"";
    for (const char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        case '\b': out += "\\b"; break;
        case '\f': out += "\\f"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x",
                          static_cast<unsigned>(static_cast<unsigned char>(c)));
            out += buf;
          } else {
            out += c;
          }
      }
    }
    out += '"';
    return out;
  }

  std::string bench_name_;
  std::vector<Record> runs_;
};

}  // namespace webwave
