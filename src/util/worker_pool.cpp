#include "util/worker_pool.h"

#include <algorithm>

#include "util/check.h"

namespace webwave {

WorkerPool::WorkerPool(int threads)
    : threads_(threads > 0
                   ? threads
                   : std::max(1u, std::thread::hardware_concurrency())) {
  // Worker 0 is the calling thread; only blocks 1..threads_-1 need their
  // own thread.
  workers_.reserve(static_cast<std::size_t>(threads_ - 1));
  for (int w = 1; w < threads_; ++w)
    workers_.emplace_back([this, w] { WorkerMain(w); });
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void WorkerPool::Partition(std::size_t count, int parts, int part,
                           std::size_t* begin, std::size_t* end) {
  WEBWAVE_REQUIRE(parts >= 1 && part >= 0 && part < parts,
                  "partition block out of range");
  const std::size_t p = static_cast<std::size_t>(part);
  const std::size_t n = static_cast<std::size_t>(parts);
  *begin = count * p / n;
  *end = count * (p + 1) / n;
}

void WorkerPool::ParallelFor(std::size_t count, const Task& fn) {
  if (count == 0) return;
  if (threads_ == 1) {
    fn(0, 0, count);  // a serial loop's exception propagates naturally
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    WEBWAVE_REQUIRE(task_ == nullptr, "ParallelFor is not reentrant");
    task_ = &fn;
    task_count_ = count;
    pending_ = threads_ - 1;
    ++generation_;
  }
  wake_.notify_all();

  std::size_t begin = 0, end = 0;
  Partition(count, threads_, 0, &begin, &end);
  std::exception_ptr error;
  if (begin < end) {
    try {
      fn(0, begin, end);
    } catch (...) {
      error = std::current_exception();
    }
  }

  std::unique_lock<std::mutex> lock(mutex_);
  if (error && !first_error_) first_error_ = error;
  done_.wait(lock, [this] { return pending_ == 0; });
  task_ = nullptr;
  // Rethrow the sweep's first exception on the submitting thread, after
  // every block has drained — the pool itself is reusable afterwards.
  if (first_error_) {
    std::exception_ptr rethrow = first_error_;
    first_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(rethrow);
  }
}

void WorkerPool::WorkerMain(int worker) {
  std::uint64_t seen = 0;
  for (;;) {
    const Task* task = nullptr;
    std::size_t count = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock,
                 [&] { return stopping_ || generation_ != seen; });
      if (stopping_) return;
      seen = generation_;
      task = task_;
      count = task_count_;
    }
    std::size_t begin = 0, end = 0;
    Partition(count, threads_, worker, &begin, &end);
    std::exception_ptr error;
    if (begin < end) {
      try {
        (*task)(worker, begin, end);
      } catch (...) {
        error = std::current_exception();
      }
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (error && !first_error_) first_error_ = error;
      --pending_;
    }
    done_.notify_one();
  }
}

}  // namespace webwave
