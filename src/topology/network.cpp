#include "topology/network.h"

#include "util/check.h"

namespace webwave {

Network::Network(int node_count)
    : adjacency_(static_cast<std::size_t>(node_count)) {
  WEBWAVE_REQUIRE(node_count >= 1, "network needs at least one node");
}

void Network::AddEdge(int u, int v, double weight) {
  WEBWAVE_REQUIRE(u >= 0 && u < size() && v >= 0 && v < size(),
                  "edge endpoint out of range");
  WEBWAVE_REQUIRE(u != v, "self loops not allowed");
  WEBWAVE_REQUIRE(weight > 0, "edge weight must be positive");
  WEBWAVE_REQUIRE(!HasEdge(u, v), "parallel edge");
  adjacency_[static_cast<std::size_t>(u)].push_back({v, weight});
  adjacency_[static_cast<std::size_t>(v)].push_back({u, weight});
  edges_.push_back({u, v, weight});
}

bool Network::HasEdge(int u, int v) const {
  WEBWAVE_REQUIRE(u >= 0 && u < size() && v >= 0 && v < size(),
                  "node out of range");
  for (const Neighbor& n : adjacency_[static_cast<std::size_t>(u)])
    if (n.node == v) return true;
  return false;
}

const std::vector<Network::Neighbor>& Network::neighbors(int v) const {
  WEBWAVE_REQUIRE(v >= 0 && v < size(), "node out of range");
  return adjacency_[static_cast<std::size_t>(v)];
}

bool Network::IsConnected() const {
  std::vector<bool> seen(static_cast<std::size_t>(size()), false);
  std::vector<int> stack = {0};
  seen[0] = true;
  int count = 0;
  while (!stack.empty()) {
    const int v = stack.back();
    stack.pop_back();
    ++count;
    for (const Neighbor& n : adjacency_[static_cast<std::size_t>(v)]) {
      if (!seen[static_cast<std::size_t>(n.node)]) {
        seen[static_cast<std::size_t>(n.node)] = true;
        stack.push_back(n.node);
      }
    }
  }
  return count == size();
}

int Network::degree(int v) const {
  return static_cast<int>(neighbors(v).size());
}

}  // namespace webwave
