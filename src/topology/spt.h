// Shortest-path routing trees and routing forests.
//
// "We model the Internet as a forest of trees, each rooted at a different
// home server" (§3).  Given a topology and a home-server node, routing
// induces the tree of routes from every client to that server; requests
// flow up this tree.  ShortestPathTree derives it by Dijkstra with
// deterministic tie-breaking (lowest parent id), so results are stable
// across runs.  RoutingForest derives one tree per home server; the trees
// overlap on the shared topology — the paper's §7 future-work setting,
// explored by bench/tab_forest_overlap.
#pragma once

#include <vector>

#include "topology/network.h"
#include "tree/routing_tree.h"

namespace webwave {

// The routing tree rooted at `home`.  Node ids are preserved (the tree has
// exactly the network's nodes).  Requires a connected network.
RoutingTree ShortestPathTree(const Network& net, int home);

struct RoutingForest {
  std::vector<int> homes;
  std::vector<RoutingTree> trees;  // trees[i] rooted at homes[i]
};

RoutingForest MakeRoutingForest(const Network& net,
                                const std::vector<int>& homes);

// For a node, how many of the forest's trees use it as an interior
// (non-leaf) node — a measure of how much trees overlap and hence how much
// cache-server capacity is shared between document families.
std::vector<int> InteriorMultiplicity(const RoutingForest& forest);

}  // namespace webwave
