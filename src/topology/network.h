// Weighted network topologies.
//
// The paper models the Internet as "a forest of trees" induced by routing
// on the real topology (§3).  This module supplies the underlying
// topology: a weighted undirected multigraph-free network from which
// per-home-server routing trees are derived by shortest-path routing
// (spt.h) and on which the Internet-like generators (generators.h) build.
#pragma once

#include <vector>

namespace webwave {

struct NetworkEdge {
  int u = 0;
  int v = 0;
  double weight = 1.0;  // link cost / latency
};

class Network {
 public:
  explicit Network(int node_count);

  int size() const { return static_cast<int>(adjacency_.size()); }
  int edge_count() const { return static_cast<int>(edges_.size()); }

  // Adds an undirected edge; parallel edges and self-loops are rejected.
  void AddEdge(int u, int v, double weight = 1.0);
  bool HasEdge(int u, int v) const;

  struct Neighbor {
    int node;
    double weight;
  };
  const std::vector<Neighbor>& neighbors(int v) const;
  const std::vector<NetworkEdge>& edges() const { return edges_; }

  bool IsConnected() const;
  int degree(int v) const;

 private:
  std::vector<std::vector<Neighbor>> adjacency_;
  std::vector<NetworkEdge> edges_;
};

}  // namespace webwave
