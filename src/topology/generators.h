// Internet-like topology generators.
//
// The generators used in 1990s networking simulation plus the modern
// standard: Waxman's random geometric model (the one contemporary with the
// paper), Barabási–Albert preferential attachment (power-law degrees, the
// accepted Internet AS-level shape), and Erdős–Rényi kept connected.
// All take explicit seeds and always return connected networks.
#pragma once

#include "topology/network.h"
#include "util/rng.h"

namespace webwave {

// G(n, p) conditioned on connectivity: edges sampled independently, then
// missing connectivity patched by linking components with random edges.
Network MakeErdosRenyi(int n, double p, Rng& rng);

// Waxman (1988): nodes uniform in the unit square; edge probability
// a·exp(−d/(b·L)) with d the Euclidean distance and L the diagonal.
// Edge weights are the distances.  Connectivity patched like Erdős–Rényi.
Network MakeWaxman(int n, double a, double b, Rng& rng);

// Barabási–Albert preferential attachment: each new node attaches to m
// distinct existing nodes chosen with probability proportional to degree.
Network MakeBarabasiAlbert(int n, int m, Rng& rng);

// Transit-stub-like two-level hierarchy: a small random "transit" core and
// star/tree "stub" domains hanging off core nodes — the closest simple
// analogue of mid-90s Internet maps.
Network MakeTransitStub(int core_size, int stubs_per_core, int stub_size,
                        Rng& rng);

}  // namespace webwave
