#include "topology/spt.h"

#include <limits>
#include <queue>

#include "util/check.h"

namespace webwave {

RoutingTree ShortestPathTree(const Network& net, int home) {
  WEBWAVE_REQUIRE(home >= 0 && home < net.size(), "home out of range");
  WEBWAVE_REQUIRE(net.IsConnected(), "network must be connected");

  const int n = net.size();
  std::vector<double> dist(static_cast<std::size_t>(n),
                           std::numeric_limits<double>::infinity());
  std::vector<NodeId> parent(static_cast<std::size_t>(n), kNoNode);
  using Item = std::pair<double, int>;  // (distance, node), min-heap
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> heap;
  dist[static_cast<std::size_t>(home)] = 0;
  heap.push({0, home});
  while (!heap.empty()) {
    const auto [d, v] = heap.top();
    heap.pop();
    if (d > dist[static_cast<std::size_t>(v)]) continue;
    for (const auto& nb : net.neighbors(v)) {
      const double nd = d + nb.weight;
      double& cur = dist[static_cast<std::size_t>(nb.node)];
      // Strict improvement, or equal distance with a smaller parent id —
      // the deterministic tie-break that makes routing stable.
      if (nd < cur - 1e-15 ||
          (nd <= cur + 1e-15 &&
           parent[static_cast<std::size_t>(nb.node)] != kNoNode &&
           v < parent[static_cast<std::size_t>(nb.node)])) {
        cur = std::min(cur, nd);
        parent[static_cast<std::size_t>(nb.node)] = v;
        heap.push({nd, nb.node});
      }
    }
  }
  parent[static_cast<std::size_t>(home)] = kNoNode;
  return RoutingTree::FromParents(std::move(parent));
}

RoutingForest MakeRoutingForest(const Network& net,
                                const std::vector<int>& homes) {
  WEBWAVE_REQUIRE(!homes.empty(), "need at least one home server");
  RoutingForest forest;
  forest.homes = homes;
  forest.trees.reserve(homes.size());
  for (const int h : homes) forest.trees.push_back(ShortestPathTree(net, h));
  return forest;
}

std::vector<int> InteriorMultiplicity(const RoutingForest& forest) {
  WEBWAVE_REQUIRE(!forest.trees.empty(), "empty forest");
  const int n = forest.trees.front().size();
  std::vector<int> multiplicity(static_cast<std::size_t>(n), 0);
  for (const RoutingTree& t : forest.trees)
    for (NodeId v = 0; v < n; ++v)
      if (!t.is_leaf(v)) ++multiplicity[static_cast<std::size_t>(v)];
  return multiplicity;
}

}  // namespace webwave
