// Structural metrics for generated topologies and routing trees —
// used to verify that the synthetic networks standing in for the paper's
// "Internet" actually look Internet-like (heavy-tailed degrees, small
// diameter) and to characterize the trees routing induces on them.
#pragma once

#include <vector>

#include "topology/network.h"
#include "tree/routing_tree.h"

namespace webwave {

struct NetworkMetrics {
  int nodes = 0;
  int edges = 0;
  double mean_degree = 0;
  int max_degree = 0;
  // Hop diameter and mean shortest-path hop count (unweighted BFS),
  // exact for n up to a few thousand.
  int diameter_hops = 0;
  double mean_distance_hops = 0;
  // Degree distribution tail weight: fraction of nodes with degree more
  // than 3x the mean — near zero for Erdős–Rényi, substantial for
  // preferential attachment.
  double hub_fraction = 0;
};

NetworkMetrics ComputeNetworkMetrics(const Network& net);

struct TreeMetrics {
  int nodes = 0;
  int height = 0;
  int leaves = 0;
  double mean_depth = 0;
  double mean_children_of_interior = 0;
  int max_children = 0;
};

TreeMetrics ComputeTreeMetrics(const RoutingTree& tree);

}  // namespace webwave
