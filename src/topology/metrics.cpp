#include "topology/metrics.h"

#include <algorithm>
#include <queue>

#include "util/check.h"

namespace webwave {

NetworkMetrics ComputeNetworkMetrics(const Network& net) {
  NetworkMetrics m;
  m.nodes = net.size();
  m.edges = net.edge_count();
  for (int v = 0; v < net.size(); ++v) {
    m.mean_degree += net.degree(v);
    m.max_degree = std::max(m.max_degree, net.degree(v));
  }
  m.mean_degree /= net.size();
  int hubs = 0;
  for (int v = 0; v < net.size(); ++v)
    if (net.degree(v) > 3 * m.mean_degree) ++hubs;
  m.hub_fraction = static_cast<double>(hubs) / net.size();

  // All-pairs BFS over hops.
  long long pair_count = 0;
  long long hop_sum = 0;
  std::vector<int> dist(static_cast<std::size_t>(net.size()));
  for (int src = 0; src < net.size(); ++src) {
    std::fill(dist.begin(), dist.end(), -1);
    std::queue<int> q;
    dist[static_cast<std::size_t>(src)] = 0;
    q.push(src);
    while (!q.empty()) {
      const int v = q.front();
      q.pop();
      for (const auto& nb : net.neighbors(v)) {
        if (dist[static_cast<std::size_t>(nb.node)] == -1) {
          dist[static_cast<std::size_t>(nb.node)] =
              dist[static_cast<std::size_t>(v)] + 1;
          q.push(nb.node);
        }
      }
    }
    for (int v = 0; v < net.size(); ++v) {
      if (v == src) continue;
      WEBWAVE_REQUIRE(dist[static_cast<std::size_t>(v)] >= 0,
                      "metrics require a connected network");
      m.diameter_hops =
          std::max(m.diameter_hops, dist[static_cast<std::size_t>(v)]);
      hop_sum += dist[static_cast<std::size_t>(v)];
      ++pair_count;
    }
  }
  m.mean_distance_hops =
      pair_count > 0 ? static_cast<double>(hop_sum) / pair_count : 0;
  return m;
}

TreeMetrics ComputeTreeMetrics(const RoutingTree& tree) {
  TreeMetrics m;
  m.nodes = tree.size();
  m.height = tree.height();
  int interior = 0;
  long long child_sum = 0;
  long long depth_sum = 0;
  for (NodeId v = 0; v < tree.size(); ++v) {
    depth_sum += tree.depth(v);
    if (tree.is_leaf(v)) {
      ++m.leaves;
    } else {
      ++interior;
      const int kids = static_cast<int>(tree.children(v).size());
      child_sum += kids;
      m.max_children = std::max(m.max_children, kids);
    }
  }
  m.mean_depth = static_cast<double>(depth_sum) / tree.size();
  m.mean_children_of_interior =
      interior > 0 ? static_cast<double>(child_sum) / interior : 0;
  return m;
}

}  // namespace webwave
