#include "topology/generators.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "util/check.h"

namespace webwave {

namespace {

// Links the connected components of `net` with random edges until the
// network is connected (component representatives chosen uniformly).
void PatchConnectivity(Network& net, Rng& rng) {
  const int n = net.size();
  std::vector<int> comp(static_cast<std::size_t>(n), -1);
  int comp_count = 0;
  for (int start = 0; start < n; ++start) {
    if (comp[static_cast<std::size_t>(start)] != -1) continue;
    std::vector<int> stack = {start};
    comp[static_cast<std::size_t>(start)] = comp_count;
    while (!stack.empty()) {
      const int v = stack.back();
      stack.pop_back();
      for (const auto& nb : net.neighbors(v)) {
        if (comp[static_cast<std::size_t>(nb.node)] == -1) {
          comp[static_cast<std::size_t>(nb.node)] = comp_count;
          stack.push_back(nb.node);
        }
      }
    }
    ++comp_count;
  }
  if (comp_count == 1) return;
  // One random member per component; chain them together.
  std::vector<std::vector<int>> members(static_cast<std::size_t>(comp_count));
  for (int v = 0; v < n; ++v)
    members[static_cast<std::size_t>(comp[static_cast<std::size_t>(v)])]
        .push_back(v);
  for (int c = 1; c < comp_count; ++c) {
    const auto& a = members[static_cast<std::size_t>(c - 1)];
    const auto& b = members[static_cast<std::size_t>(c)];
    const int u = a[static_cast<std::size_t>(rng.NextBelow(a.size()))];
    const int v = b[static_cast<std::size_t>(rng.NextBelow(b.size()))];
    if (!net.HasEdge(u, v)) net.AddEdge(u, v);
  }
}

}  // namespace

Network MakeErdosRenyi(int n, double p, Rng& rng) {
  WEBWAVE_REQUIRE(n >= 1, "need at least one node");
  WEBWAVE_REQUIRE(p >= 0 && p <= 1, "probability out of range");
  Network net(n);
  for (int u = 0; u < n; ++u)
    for (int v = u + 1; v < n; ++v)
      if (rng.NextBernoulli(p)) net.AddEdge(u, v);
  PatchConnectivity(net, rng);
  return net;
}

Network MakeWaxman(int n, double a, double b, Rng& rng) {
  WEBWAVE_REQUIRE(n >= 1, "need at least one node");
  WEBWAVE_REQUIRE(a > 0 && a <= 1, "Waxman a in (0,1]");
  WEBWAVE_REQUIRE(b > 0, "Waxman b must be positive");
  std::vector<double> x(static_cast<std::size_t>(n)), y(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    x[static_cast<std::size_t>(i)] = rng.NextDouble();
    y[static_cast<std::size_t>(i)] = rng.NextDouble();
  }
  const double diagonal = std::sqrt(2.0);
  Network net(n);
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      const double dx = x[static_cast<std::size_t>(u)] - x[static_cast<std::size_t>(v)];
      const double dy = y[static_cast<std::size_t>(u)] - y[static_cast<std::size_t>(v)];
      const double d = std::sqrt(dx * dx + dy * dy);
      if (rng.NextBernoulli(a * std::exp(-d / (b * diagonal))))
        net.AddEdge(u, v, std::max(d, 1e-6));
    }
  }
  PatchConnectivity(net, rng);
  return net;
}

Network MakeBarabasiAlbert(int n, int m, Rng& rng) {
  WEBWAVE_REQUIRE(m >= 1, "m must be >= 1");
  WEBWAVE_REQUIRE(n > m, "need n > m");
  Network net(n);
  // Seed clique of m+1 nodes.
  for (int u = 0; u <= m; ++u)
    for (int v = u + 1; v <= m; ++v) net.AddEdge(u, v);
  // Degree-proportional sampling via a repeated-endpoints urn.
  std::vector<int> urn;
  for (const auto& e : net.edges()) {
    urn.push_back(e.u);
    urn.push_back(e.v);
  }
  for (int v = m + 1; v < n; ++v) {
    std::vector<int> targets;
    while (static_cast<int>(targets.size()) < m) {
      const int t = urn[static_cast<std::size_t>(rng.NextBelow(urn.size()))];
      if (std::find(targets.begin(), targets.end(), t) == targets.end())
        targets.push_back(t);
    }
    for (const int t : targets) {
      net.AddEdge(v, t);
      urn.push_back(v);
      urn.push_back(t);
    }
  }
  return net;
}

Network MakeTransitStub(int core_size, int stubs_per_core, int stub_size,
                        Rng& rng) {
  WEBWAVE_REQUIRE(core_size >= 1, "core must be non-empty");
  WEBWAVE_REQUIRE(stubs_per_core >= 0 && stub_size >= 1, "invalid stub shape");
  const int n = core_size + core_size * stubs_per_core * stub_size;
  Network net(n);
  // Core: ring plus random chords for redundancy.
  for (int u = 0; u < core_size; ++u)
    if (core_size > 1) {
      const int v = (u + 1) % core_size;
      if (!net.HasEdge(u, v)) net.AddEdge(u, v, 0.2);
    }
  for (int u = 0; u < core_size; ++u) {
    if (core_size > 3 && rng.NextBernoulli(0.3)) {
      const int v = static_cast<int>(rng.NextBelow(static_cast<std::uint64_t>(core_size)));
      if (v != u && !net.HasEdge(u, v)) net.AddEdge(u, v, 0.2);
    }
  }
  // Stubs: random recursive trees hanging off their core gateway.
  int next = core_size;
  for (int c = 0; c < core_size; ++c) {
    for (int s = 0; s < stubs_per_core; ++s) {
      std::vector<int> stub_nodes;
      for (int i = 0; i < stub_size; ++i) {
        const int v = next++;
        if (i == 0) {
          net.AddEdge(v, c, 1.0);
        } else {
          const int p = stub_nodes[static_cast<std::size_t>(
              rng.NextBelow(stub_nodes.size()))];
          net.AddEdge(v, p, 1.0);
        }
        stub_nodes.push_back(v);
      }
    }
  }
  WEBWAVE_ASSERT(next == n, "node accounting mismatch");
  return net;
}

}  // namespace webwave
