#include "netd/daemon.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>

#include "util/check.h"
#include "util/rng.h"

namespace webwave {

namespace {

QuotaSnapshot SnapshotFromBlob(const std::vector<std::uint8_t>& blob) {
  QuotaSnapshot s;
  WEBWAVE_REQUIRE(QuotaWireTable::Deserialize(blob.data(), blob.size(), &s),
                  "netd daemon handed a corrupt quota blob");
  return s;
}

}  // namespace

CacheServerDaemon::CacheServerDaemon(const NetdClusterConfig& config,
                                     int server_index, int listen_fd,
                                     std::vector<std::uint16_t> ports)
    : config_(config),
      index_(server_index),
      listen_fd_(listen_fd),
      ports_(std::move(ports)),
      tree_(RoutingTree::FromParents(config.parents)),
      table_(SnapshotFromBlob(config.quota_blob)),
      owner_(config.owner),
      peers_(static_cast<std::size_t>(config.server_count)),
      flight_(&clock_, config.flight_capacity > 0 ? config.flight_capacity
                                                  : 1) {
  WEBWAVE_REQUIRE(config.serving.block_size == 1,
                  "netd requires block_size == 1 (the order-free admission "
                  "regime) so async fleets stay bit-comparable to the oracle");
  ServingOptions opt = config.serving;
  opt.threads = 1;  // a forked daemon must never spawn threads
  plane_ = std::make_unique<ServingPlane>(tree_, table_, opt);
  for (NodeId v = 0; v < tree_.size(); ++v)
    if (owner_[static_cast<std::size_t>(v)] == index_) shard_.push_back(v);
  plane_->SetSegmentNodes(Span<const NodeId>(shard_.data(), shard_.size()));
  if (!config.down.empty())
    plane_->SetDownNodes(Span<const NodeId>(config.down.data(), config.down.size()));
  plane_->AttachRegistry(&registry_, "serve.");
  reg_net_forwards_ = registry_.Counter("netd.net_forwards");
  reg_gossip_sent_ = registry_.Counter("netd.gossip_sent");
  reg_shed_forwards_ = registry_.Counter("netd.shed_forwards");
  reg_reconnects_ = registry_.Counter("netd.reconnects");
  reg_outbox_peak_ = registry_.Gauge("netd.outbox_peak_bytes");
  hist_queue_delay_ = hists_.Register("netd.frame_queue_delay_ns");
  hist_serve_ = hists_.Register("netd.serve_time_ns");
  hist_control_ = hists_.Register("netd.control_time_ns");
  hist_poll_iter_ = hists_.Register("netd.loop_poll_iter_ns");
  hist_timer_lag_ = hists_.Register("netd.loop_timer_lag_ns");
  EventLoop::LatencySink sink;
  sink.clock = &clock_;
  sink.poll_iter = &hists_.At(hist_poll_iter_);
  sink.timer_lag = &hists_.At(hist_timer_lag_);
  sink.max_stall_ns = &max_stall_ns_;
  loop_.AttachLatencyPlane(sink);
}

CacheServerDaemon::~CacheServerDaemon() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

int CacheServerDaemon::Run() {
  MakeNonBlocking(listen_fd_);
  flight_.Note(FlightEventKind::kBoot, static_cast<std::uint64_t>(index_),
               epoch_);
  loop_.WatchRead(listen_fd_, [this] { OnAcceptable(); });
  if (config_.gossip_period_ms > 0 && config_.server_count > 1)
    ScheduleGossip();
  const int code = loop_.Run();
  DumpFlightOnShutdown();
  return code;
}

void CacheServerDaemon::OnAcceptable() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;  // transient accept failure; poll will retry
    }
    AdoptConn(fd);
  }
}

void CacheServerDaemon::AdoptConn(int fd) {
  MakeNonBlocking(fd);
  conns_[fd] = std::make_unique<FrameConn>(fd);
  flight_.Note(FlightEventKind::kConnUp, static_cast<std::uint64_t>(fd),
               /*arg=*/0);  // arg 0: accepted (incoming) conn
  loop_.WatchRead(fd, [this, fd] {
    const auto it = conns_.find(fd);
    if (it == conns_.end()) return;
    // Queue delay is measured from here: every frame this read batch
    // dispatches waited at least since the batch began.
    read_batch_start_ns_ = clock_.NowNanos();
    const bool alive = it->second->OnReadable(
        [this, fd](const WireMessage& m) { OnFrame(fd, m); });
    if (!alive) DropConn(fd);
  });
}

void CacheServerDaemon::DropConn(int fd) {
  const auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  NoteOutboxPeak(*it->second);
  flight_.Note(FlightEventKind::kConnDown, static_cast<std::uint64_t>(fd),
               /*arg=*/0);
  loop_.Unwatch(fd);
  conns_.erase(it);  // closes the fd
}

void CacheServerDaemon::UpdateWriteInterest(int fd) {
  const auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  FrameConn* c = it->second.get();
  NoteOutboxPeak(*c);
  if (c->closed()) {
    DropConn(fd);
    return;
  }
  loop_.SetWriteInterest(fd, c->want_write(), [this, fd] {
    const auto it2 = conns_.find(fd);
    if (it2 == conns_.end()) return;
    it2->second->Flush();
    UpdateWriteInterest(fd);
  });
}

void CacheServerDaemon::OnFrame(int from_fd, const WireMessage& msg) {
  // Queue delay: how long this frame sat behind its read batch before
  // its handler ran.  Service time: the handler itself.  Both real
  // wall-clock — shipped and dumped, never identity-asserted.
  const std::uint64_t t0 = clock_.NowNanos();
  hists_.At(hist_queue_delay_)
      .Record(t0 >= read_batch_start_ns_ ? t0 - read_batch_start_ns_ : 0);
  const std::uint64_t frame_detail =
      msg.type == MsgType::kGetRequest  ? msg.get.req_id
      : msg.type == MsgType::kGetReply  ? msg.reply.req_id
                                        : 0;
  flight_.Note(FlightEventKind::kFrameIn, frame_detail,
               static_cast<std::uint32_t>(msg.type));
  DispatchFrame(from_fd, msg);
  const std::uint64_t t1 = clock_.NowNanos();
  hists_
      .At(msg.type == MsgType::kGetRequest ? hist_serve_ : hist_control_)
      .Record(t1 >= t0 ? t1 - t0 : 0);
}

void CacheServerDaemon::DispatchFrame(int from_fd, const WireMessage& msg) {
  switch (msg.type) {
    case MsgType::kGetRequest:
      HandleRequest(from_fd, msg.get);
      break;
    case MsgType::kGetReply: {
      // A reply from upstream: retrace it to whoever handed us the
      // request.
      const auto it = pending_.find(msg.reply.req_id);
      if (it == pending_.end()) break;  // origin conn died meanwhile
      const int dest = it->second;
      pending_.erase(it);
      const auto cit = conns_.find(dest);
      if (cit != conns_.end()) {
        cit->second->Send(msg.reply);
        UpdateWriteInterest(dest);
      }
      break;
    }
    case MsgType::kLoadGossip:
      gossip_heard_[msg.gossip.node] = msg.gossip.load;
      break;
    case MsgType::kStatsRequest: {
      const auto it = conns_.find(from_fd);
      if (it != conns_.end()) {
        // v4: counters plus the request service-time histogram, so the
        // live scraper collects fleet-wide latency for free.
        StatsReply reply;
        reply.counters = Counters();
        reply.hist = WireHistogram::From(hists_.At(hist_serve_));
        it->second->Send(reply);
        flight_.Note(FlightEventKind::kFrameOut, 0,
                     static_cast<std::uint32_t>(MsgType::kStatsReply));
        UpdateWriteInterest(from_fd);
      }
      break;
    }
    case MsgType::kFlightRequest: {
      // The flight scrape — how a victim's last milliseconds survive its
      // SIGKILL: the loadgen drains the fleet, asks for the ring, and
      // only kills once the reply (and the stats/trace scrapes) landed.
      const auto it = conns_.find(from_fd);
      if (it != conns_.end()) {
        it->second->Send(FlightSnapshot());
        UpdateWriteInterest(from_fd);
      }
      break;
    }
    case MsgType::kTraceRequest: {
      // The trace scrape: ship every TraceEvent this shard recorded.  The
      // loadgen merges and canonicalizes the per-daemon streams.
      const auto it = conns_.find(from_fd);
      if (it != conns_.end()) {
        it->second->Send(plane_->trace());
        UpdateWriteInterest(from_fd);
      }
      break;
    }
    case MsgType::kQuotaDelta:
      ApplyQuotaDelta(msg.delta);
      break;
    case MsgType::kEpochUpdate:
      ApplyEpochUpdate(msg.epoch_update);
      break;
    case MsgType::kHello:
      // The rejoin handshake: a loadgen Hello is answered with this
      // daemon's identity and current epoch, so the control node knows
      // which table the daemon is serving from (a fresh boot says 0 and
      // is then brought current by one delta).  Peer-server Hellos are
      // introductions only.
      if (msg.hello.kind == PeerKind::kLoadgen) {
        const auto it = conns_.find(from_fd);
        if (it != conns_.end()) {
          Hello h;
          h.kind = PeerKind::kServer;
          h.sender = static_cast<std::uint32_t>(index_);
          h.epoch = epoch_;
          it->second->Send(h);
          UpdateWriteInterest(from_fd);
        }
      }
      break;
    case MsgType::kShutdown:
      flight_.Note(FlightEventKind::kShutdown,
                   static_cast<std::uint64_t>(index_), epoch_);
      loop_.Stop(0);
      break;
    case MsgType::kStatsReply:
    case MsgType::kTraceReply:
    case MsgType::kFlightReply:
      break;  // never addressed to a daemon; ignore
  }
}

void CacheServerDaemon::HandleRequest(int from_fd, const GetRequest& req) {
  GetRequest fwd;
  GetReply reply;
  switch (plane_->ServeWireSegment(req, &fwd, &reply)) {
    case ServingPlane::WireServe::kServed:
    case ServingPlane::WireServe::kDropped: {
      const auto it = conns_.find(from_fd);
      if (it != conns_.end()) {
        it->second->Send(reply);
        flight_.Note(FlightEventKind::kFrameOut, reply.req_id,
                     static_cast<std::uint32_t>(MsgType::kGetReply));
        UpdateWriteInterest(from_fd);
      }
      break;
    }
    case ServingPlane::WireServe::kForwarded: {
      const int target = owner_[static_cast<std::size_t>(fwd.origin_node)];
      FrameConn* peer = ConnTo(target);
      constexpr std::size_t kFrameBytes =
          MessageCodec::kHeaderSize + MessageCodec::kGetRequestSize;
      if (peer->outbox_bytes() + kFrameBytes >
          config_.outbox_watermark_bytes) {
        // Bounded backpressure: shed into the failover path instead of
        // queueing unboundedly behind a slow or dead peer.  The plane's
        // oracle-compared counters are untouched — this is a transport
        // event, counted by netd.shed_forwards alone.
        GetReply shed;
        shed.req_id = req.req_id;
        shed.doc = req.doc;
        shed.serving_node = kNoNode;
        shed.result = GetResult::kDropped;
        shed.hops = fwd.ttl_hops;
        shed.load = 0;
        shed.version = epoch_;
        registry_.Add(reg_shed_forwards_, 1);
        const auto it = conns_.find(from_fd);
        if (it != conns_.end()) {
          it->second->Send(shed);
          UpdateWriteInterest(from_fd);
        }
        break;
      }
      pending_[req.req_id] = from_fd;
      peer->Send(fwd);
      registry_.Add(reg_net_forwards_, 1);
      flight_.Note(FlightEventKind::kFrameOut, fwd.req_id,
                   static_cast<std::uint32_t>(MsgType::kGetRequest));
      UpdatePeerWriteInterest(target);
      break;
    }
  }
}

FrameConn* CacheServerDaemon::ConnTo(int s) {
  WEBWAVE_REQUIRE(s != index_, "a shard never forwards to itself");
  PeerLink& link = peers_[static_cast<std::size_t>(s)];
  if (link.st == PeerLink::St::kIdle) {
    if (!link.conn) {
      // First contact: a fresh corked conn whose queue begins with this
      // daemon's introduction, so Hello always precedes any forward —
      // including across socket retries (the corked queue replays
      // whole).
      link.conn = std::make_unique<FrameConn>(-1);
      link.conn->set_connecting(true);
      Hello hello;
      hello.kind = PeerKind::kServer;
      hello.sender = static_cast<std::uint32_t>(index_);
      hello.epoch = epoch_;
      link.conn->Send(hello);
    }
    StartConnect(s);
  }
  return link.conn.get();
}

void CacheServerDaemon::StartConnect(int s) {
  PeerLink& link = peers_[static_cast<std::size_t>(s)];
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  WEBWAVE_REQUIRE(fd >= 0, "socket() failed");
  MakeNonBlocking(fd);
  link.conn->ResetFd(fd);
  link.st = PeerLink::St::kConnecting;
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof addr);
  addr.sin_family = AF_INET;
  addr.sin_port = htons(ports_[static_cast<std::size_t>(s)]);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
  } while (rc < 0 && errno == EINTR);
  if (rc == 0) {
    FinishConnect(s);
    return;
  }
  if (errno != EINPROGRESS) {
    ConnectFailed(s);
    return;
  }
  // In flight: writability signals the outcome, the timer bounds it.
  loop_.WatchRead(fd, [this, s] {
    // Readable while connecting means the handshake resolved (possibly
    // with an error); SO_ERROR disambiguates.
    CheckConnect(s);
  });
  loop_.SetWriteInterest(fd, true, [this, s] { CheckConnect(s); });
  link.timer = loop_.AddTimer(config_.connect_timeout_ms, [this, s] {
    peers_[static_cast<std::size_t>(s)].timer_armed = false;
    ConnectFailed(s);
  });
  link.timer_armed = true;
}

void CacheServerDaemon::CheckConnect(int s) {
  PeerLink& link = peers_[static_cast<std::size_t>(s)];
  if (link.st != PeerLink::St::kConnecting || !link.conn ||
      link.conn->fd() < 0)
    return;
  int err = 0;
  socklen_t len = sizeof err;
  if (::getsockopt(link.conn->fd(), SOL_SOCKET, SO_ERROR, &err, &len) != 0)
    err = errno;
  if (err == 0) {
    FinishConnect(s);
  } else if (err != EINPROGRESS && err != EALREADY) {
    ConnectFailed(s);
  }
}

void CacheServerDaemon::FinishConnect(int s) {
  PeerLink& link = peers_[static_cast<std::size_t>(s)];
  CancelPeerTimer(s);
  link.st = PeerLink::St::kLive;
  link.attempts = 0;
  const int fd = link.conn->fd();
  link.conn->set_connecting(false);
  flight_.Note(FlightEventKind::kConnUp, static_cast<std::uint64_t>(s),
               /*arg=*/1);  // arg 1: outgoing peer link
  loop_.WatchRead(fd, [this, s] {
    PeerLink& l = peers_[static_cast<std::size_t>(s)];
    if (l.st != PeerLink::St::kLive || !l.conn) return;
    read_batch_start_ns_ = clock_.NowNanos();
    const bool alive = l.conn->OnReadable(
        [this, fd2 = l.conn->fd()](const WireMessage& m) { OnFrame(fd2, m); });
    if (!alive) PeerConnDown(s);
  });
  if (!link.conn->Flush()) {
    PeerConnDown(s);
    return;
  }
  UpdatePeerWriteInterest(s);
}

void CacheServerDaemon::ConnectFailed(int s) {
  PeerLink& link = peers_[static_cast<std::size_t>(s)];
  CancelPeerTimer(s);
  if (link.conn->fd() >= 0) {
    loop_.Unwatch(link.conn->fd());
    link.conn->ResetFd(-1);  // park: keep the corked queue, drop the socket
  }
  link.st = PeerLink::St::kIdle;
  link.attempts++;
  registry_.Add(reg_reconnects_, 1);
  const std::uint64_t delay = ReconnectDelayMs(s, link.attempts);
  link.timer = loop_.AddTimer(static_cast<int>(delay), [this, s] {
    PeerLink& l = peers_[static_cast<std::size_t>(s)];
    l.timer_armed = false;
    if (l.st == PeerLink::St::kIdle && l.conn) StartConnect(s);
  });
  link.timer_armed = true;
}

void CacheServerDaemon::PeerConnDown(int s) {
  // A live peer conn died (peer crashed or reset).  A partial frame may
  // already be on the dead wire, so the queue cannot be replayed —
  // discard the conn; the next forward makes a fresh one (ConnTo) and
  // counts the reconnect.
  PeerLink& link = peers_[static_cast<std::size_t>(s)];
  if (link.conn) {
    NoteOutboxPeak(*link.conn);
    if (link.conn->fd() >= 0) loop_.Unwatch(link.conn->fd());
  }
  CancelPeerTimer(s);
  link.conn.reset();
  link.st = PeerLink::St::kIdle;
  link.attempts = 0;
  registry_.Add(reg_reconnects_, 1);
  flight_.Note(FlightEventKind::kConnDown, static_cast<std::uint64_t>(s),
               /*arg=*/1);
}

void CacheServerDaemon::UpdatePeerWriteInterest(int s) {
  PeerLink& link = peers_[static_cast<std::size_t>(s)];
  if (!link.conn) return;
  NoteOutboxPeak(*link.conn);
  if (link.st != PeerLink::St::kLive) return;  // corked; nothing to flush
  if (link.conn->closed()) {
    PeerConnDown(s);
    return;
  }
  const int fd = link.conn->fd();
  loop_.SetWriteInterest(fd, link.conn->want_write(), [this, s] {
    PeerLink& l = peers_[static_cast<std::size_t>(s)];
    if (l.st != PeerLink::St::kLive || !l.conn) return;
    if (!l.conn->Flush()) {
      PeerConnDown(s);
      return;
    }
    UpdatePeerWriteInterest(s);
  });
}

void CacheServerDaemon::CancelPeerTimer(int s) {
  PeerLink& link = peers_[static_cast<std::size_t>(s)];
  if (link.timer_armed) {
    loop_.CancelTimer(link.timer);
    link.timer_armed = false;
  }
}

std::uint64_t CacheServerDaemon::ReconnectDelayMs(
    int s, std::uint32_t attempt) const {
  // Same dither law as serving backoff (serving_plane.cpp): a unit
  // double hashed from (key, attempt) scales an exponentially growing
  // slot window; here one slot is one millisecond.  key mixes the
  // ordered server pair so no two links share a phase.
  std::uint64_t pair = 0x9e3779b97f4a7c15ULL *
                           static_cast<std::uint64_t>(index_ + 1) +
                       static_cast<std::uint64_t>(s);
  const std::uint64_t key = SplitMix64(pair);
  const double u = CounterUnitDouble(key + 0xd1342543de82ef95ULL * attempt);
  const std::uint32_t cap = attempt < 16 ? attempt : 16;
  const double window = static_cast<double>(1ULL << cap);
  return 1 + static_cast<std::uint64_t>(u * window);
}

void CacheServerDaemon::ApplyQuotaDelta(const QuotaDelta& delta) {
  WEBWAVE_REQUIRE(QuotaWireTable::ApplyDelta(delta, &table_),
                  "netd daemon handed an inapplicable quota delta");
  plane_->Refresh(table_);
  epoch_ = delta.epoch;
  plane_->SetTableVersion(epoch_);
  flight_.Note(FlightEventKind::kEpoch, epoch_,
               static_cast<std::uint32_t>(MsgType::kQuotaDelta));
}

void CacheServerDaemon::ApplyEpochUpdate(const EpochUpdate& update) {
  // Stateless by design: overrides apply to a fresh copy of the boot
  // map, so the same frame lands identically on a daemon that saw every
  // epoch and one that just rebooted.
  owner_ = config_.owner;
  for (const OwnerDelta& d : update.reassign)
    owner_[static_cast<std::size_t>(d.node)] = static_cast<int>(d.owner);
  shard_.clear();
  for (NodeId v = 0; v < tree_.size(); ++v)
    if (owner_[static_cast<std::size_t>(v)] == index_) shard_.push_back(v);
  plane_->SetSegmentNodes(Span<const NodeId>(shard_.data(), shard_.size()));
  plane_->SetDownNodes(
      Span<const NodeId>(update.down.data(), update.down.size()));
  flight_.Note(FlightEventKind::kEpoch, update.epoch,
               static_cast<std::uint32_t>(MsgType::kEpochUpdate));
}

void CacheServerDaemon::ScheduleGossip() {
  loop_.AddTimer(config_.gossip_period_ms, [this] {
    GossipTick();
    ScheduleGossip();
  });
}

void CacheServerDaemon::GossipTick() {
  flight_.Note(FlightEventKind::kTimerFire, gossip_epoch_,
               /*arg=*/0);  // the gossip cadence, the daemon's steady timer
  if (shard_.empty()) return;
  LoadGossip g;
  g.node = shard_.front();
  g.epoch = gossip_epoch_++;
  g.load = static_cast<double>(plane_->metrics().requests);
  const int target = (index_ + 1) % config_.server_count;
  if (target == index_) return;
  FrameConn* peer = ConnTo(target);
  peer->Send(g);
  registry_.Add(reg_gossip_sent_, 1);
  UpdatePeerWriteInterest(target);
}

void CacheServerDaemon::NoteOutboxPeak(const FrameConn& c) {
  const std::size_t peak = c.outbox_peak();
  if (static_cast<std::int64_t>(peak) > registry_.gauge(reg_outbox_peak_))
    registry_.Set(reg_outbox_peak_, static_cast<std::int64_t>(peak));
}

FlightReply CacheServerDaemon::FlightSnapshot() {
  FlightReply reply;
  reply.events = flight_.Snapshot();
  for (FlightEvent& e : reply.events)
    e.node = static_cast<std::uint8_t>(index_);
  return reply;
}

void CacheServerDaemon::DumpFlightOnShutdown() {
  if (config_.flight_dir.empty()) return;
  const std::string path = config_.flight_dir + "/flight_" +
                           std::to_string(index_) + ".txt";
  const std::string doc =
      FlightRecorder::Dump(FlightSnapshot().events,
                           static_cast<std::uint8_t>(index_));
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return;  // best-effort: a dump never fails a shutdown
  std::fwrite(doc.data(), 1, doc.size(), f);
  std::fclose(f);
}

WireCounters CacheServerDaemon::Counters() const {
  const ServingMetrics& m = plane_->metrics();
  WireCounters c;
  c.requests = m.requests;
  c.cache_served = m.cache_served;
  c.home_served = m.home_served;
  c.hop_sum = m.hop_sum;
  c.failed_attempts = m.failed_attempts;
  c.failovers = m.failovers;
  c.dropped_requests = m.dropped_requests;
  c.backoff_slots = m.backoff_slots;
  c.net_forwards = registry_.counter(reg_net_forwards_);
  c.gossip_sent = registry_.counter(reg_gossip_sent_);
  c.shed_forwards = registry_.counter(reg_shed_forwards_);
  c.reconnects = registry_.counter(reg_reconnects_);
  c.outbox_peak_bytes =
      static_cast<std::uint64_t>(registry_.gauge(reg_outbox_peak_));
  return c;
}

}  // namespace webwave
