#include "netd/daemon.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/check.h"
#include "wire/quota_wire.h"

namespace webwave {

namespace {

QuotaSnapshot SnapshotFromBlob(const std::vector<std::uint8_t>& blob) {
  QuotaSnapshot s;
  WEBWAVE_REQUIRE(QuotaWireTable::Deserialize(blob.data(), blob.size(), &s),
                  "netd daemon handed a corrupt quota blob");
  return s;
}

}  // namespace

CacheServerDaemon::CacheServerDaemon(const NetdClusterConfig& config,
                                     int server_index, int listen_fd,
                                     std::vector<std::uint16_t> ports)
    : config_(config),
      index_(server_index),
      listen_fd_(listen_fd),
      ports_(std::move(ports)),
      tree_(RoutingTree::FromParents(config.parents)),
      peer_fd_(config.server_count, -1) {
  WEBWAVE_REQUIRE(config.serving.block_size == 1,
                  "netd requires block_size == 1 (the order-free admission "
                  "regime) so async fleets stay bit-comparable to the oracle");
  ServingOptions opt = config.serving;
  opt.threads = 1;  // a forked daemon must never spawn threads
  plane_ = std::make_unique<ServingPlane>(tree_, SnapshotFromBlob(config.quota_blob),
                                          opt);
  for (NodeId v = 0; v < tree_.size(); ++v)
    if (config.owner[static_cast<std::size_t>(v)] == index_) shard_.push_back(v);
  plane_->SetSegmentNodes(Span<const NodeId>(shard_.data(), shard_.size()));
  if (!config.down.empty())
    plane_->SetDownNodes(Span<const NodeId>(config.down.data(), config.down.size()));
  plane_->AttachRegistry(&registry_, "serve.");
  reg_net_forwards_ = registry_.Counter("netd.net_forwards");
  reg_gossip_sent_ = registry_.Counter("netd.gossip_sent");
}

CacheServerDaemon::~CacheServerDaemon() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

int CacheServerDaemon::Run() {
  MakeNonBlocking(listen_fd_);
  loop_.WatchRead(listen_fd_, [this] { OnAcceptable(); });
  if (config_.gossip_period_ms > 0 && config_.server_count > 1)
    ScheduleGossip();
  return loop_.Run();
}

void CacheServerDaemon::OnAcceptable() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;  // transient accept failure; poll will retry
    }
    AdoptConn(fd);
  }
}

void CacheServerDaemon::AdoptConn(int fd) {
  MakeNonBlocking(fd);
  conns_[fd] = std::make_unique<FrameConn>(fd);
  loop_.WatchRead(fd, [this, fd] {
    const auto it = conns_.find(fd);
    if (it == conns_.end()) return;
    const bool alive = it->second->OnReadable(
        [this, fd](const WireMessage& m) { OnFrame(fd, m); });
    if (!alive) DropConn(fd);
  });
}

void CacheServerDaemon::DropConn(int fd) {
  loop_.Unwatch(fd);
  for (int& pf : peer_fd_)
    if (pf == fd) pf = -1;
  conns_.erase(fd);  // closes the fd
}

void CacheServerDaemon::UpdateWriteInterest(int fd) {
  const auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  FrameConn* c = it->second.get();
  if (c->closed()) {
    DropConn(fd);
    return;
  }
  loop_.SetWriteInterest(fd, c->want_write(), [this, fd] {
    const auto it2 = conns_.find(fd);
    if (it2 == conns_.end()) return;
    it2->second->Flush();
    UpdateWriteInterest(fd);
  });
}

void CacheServerDaemon::OnFrame(int from_fd, const WireMessage& msg) {
  switch (msg.type) {
    case MsgType::kGetRequest:
      HandleRequest(from_fd, msg.get);
      break;
    case MsgType::kGetReply: {
      // A reply from upstream: retrace it to whoever handed us the
      // request.
      const auto it = pending_.find(msg.reply.req_id);
      if (it == pending_.end()) break;  // origin conn died meanwhile
      const int dest = it->second;
      pending_.erase(it);
      const auto cit = conns_.find(dest);
      if (cit != conns_.end()) {
        cit->second->Send(msg.reply);
        UpdateWriteInterest(dest);
      }
      break;
    }
    case MsgType::kLoadGossip:
      gossip_heard_[msg.gossip.node] = msg.gossip.load;
      break;
    case MsgType::kStatsRequest: {
      const auto it = conns_.find(from_fd);
      if (it != conns_.end()) {
        it->second->Send(Counters());
        UpdateWriteInterest(from_fd);
      }
      break;
    }
    case MsgType::kTraceRequest: {
      // The trace scrape: ship every TraceEvent this shard recorded.  The
      // loadgen merges and canonicalizes the per-daemon streams.
      const auto it = conns_.find(from_fd);
      if (it != conns_.end()) {
        it->second->Send(plane_->trace());
        UpdateWriteInterest(from_fd);
      }
      break;
    }
    case MsgType::kShutdown:
      loop_.Stop(0);
      break;
    case MsgType::kHello:
    case MsgType::kStatsReply:
    case MsgType::kTraceReply:
      break;  // peer introductions; nothing to do
  }
}

void CacheServerDaemon::HandleRequest(int from_fd, const GetRequest& req) {
  GetRequest fwd;
  GetReply reply;
  switch (plane_->ServeWireSegment(req, &fwd, &reply)) {
    case ServingPlane::WireServe::kServed:
    case ServingPlane::WireServe::kDropped: {
      const auto it = conns_.find(from_fd);
      if (it != conns_.end()) {
        it->second->Send(reply);
        UpdateWriteInterest(from_fd);
      }
      break;
    }
    case ServingPlane::WireServe::kForwarded: {
      const int target =
          config_.owner[static_cast<std::size_t>(fwd.origin_node)];
      FrameConn* peer = ConnTo(target);
      pending_[req.req_id] = from_fd;
      peer->Send(fwd);
      registry_.Add(reg_net_forwards_, 1);
      UpdateWriteInterest(peer->fd());
      break;
    }
  }
}

FrameConn* CacheServerDaemon::ConnTo(int s) {
  WEBWAVE_REQUIRE(s != index_, "a shard never forwards to itself");
  if (peer_fd_[static_cast<std::size_t>(s)] >= 0)
    return conns_[peer_fd_[static_cast<std::size_t>(s)]].get();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  WEBWAVE_REQUIRE(fd >= 0, "socket() failed");
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof addr);
  addr.sin_family = AF_INET;
  addr.sin_port = htons(ports_[static_cast<std::size_t>(s)]);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  // Blocking connect on purpose: the peer's listen socket already exists
  // (created by the parent before any fork), so the kernel completes the
  // handshake immediately regardless of whether the peer polled yet.
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
  } while (rc < 0 && errno == EINTR);
  WEBWAVE_REQUIRE(rc == 0, "connect() to a peer daemon failed");
  AdoptConn(fd);
  peer_fd_[static_cast<std::size_t>(s)] = fd;
  Hello hello;
  hello.kind = PeerKind::kServer;
  hello.sender = static_cast<std::uint32_t>(index_);
  conns_[fd]->Send(hello);
  UpdateWriteInterest(fd);
  return conns_[fd].get();
}

void CacheServerDaemon::ScheduleGossip() {
  loop_.AddTimer(config_.gossip_period_ms, [this] {
    GossipTick();
    ScheduleGossip();
  });
}

void CacheServerDaemon::GossipTick() {
  if (shard_.empty()) return;
  LoadGossip g;
  g.node = shard_.front();
  g.epoch = gossip_epoch_++;
  g.load = static_cast<double>(plane_->metrics().requests);
  const int target = (index_ + 1) % config_.server_count;
  FrameConn* peer = ConnTo(target);
  peer->Send(g);
  registry_.Add(reg_gossip_sent_, 1);
  UpdateWriteInterest(peer->fd());
}

WireCounters CacheServerDaemon::Counters() const {
  const ServingMetrics& m = plane_->metrics();
  WireCounters c;
  c.requests = m.requests;
  c.cache_served = m.cache_served;
  c.home_served = m.home_served;
  c.hop_sum = m.hop_sum;
  c.failed_attempts = m.failed_attempts;
  c.failovers = m.failovers;
  c.dropped_requests = m.dropped_requests;
  c.backoff_slots = m.backoff_slots;
  c.net_forwards = registry_.counter(reg_net_forwards_);
  c.gossip_sent = registry_.counter(reg_gossip_sent_);
  return c;
}

}  // namespace webwave
