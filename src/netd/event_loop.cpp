#include "netd/event_loop.h"

#include <poll.h>
#include <time.h>

#include <algorithm>

#include "util/check.h"

namespace webwave {

EventLoop::EventLoop() : wheel_(kWheelSlots), wheel_time_ms_(NowMs()) {}

std::int64_t EventLoop::NowMs() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1000 + ts.tv_nsec / 1000000;
}

void EventLoop::WatchRead(int fd, IoCallback on_readable) {
  watches_[fd].on_readable = std::move(on_readable);
}

void EventLoop::SetWriteInterest(int fd, bool on, IoCallback on_writable) {
  Watch& w = watches_[fd];
  w.want_write = on;
  if (on_writable) w.on_writable = std::move(on_writable);
}

void EventLoop::Unwatch(int fd) { watches_.erase(fd); }

std::uint64_t EventLoop::AddTimer(int delay_ms, TimerCallback cb) {
  WEBWAVE_REQUIRE(delay_ms >= 0, "timer delay must be non-negative");
  const std::uint64_t ticks =
      (static_cast<std::uint64_t>(delay_ms) + kTickMs - 1) / kTickMs;
  Timer t;
  t.id = next_timer_id_++;
  t.rounds = static_cast<std::uint32_t>(ticks / kWheelSlots);
  t.cb = std::move(cb);
  // Hash into the slot `ticks` ahead of the cursor; a delay shorter than
  // one tick fires on the next wheel advance.
  const std::size_t slot =
      (wheel_pos_ + std::max<std::uint64_t>(ticks, 1)) % kWheelSlots;
  wheel_[slot].push_back(std::move(t));
  ++active_timers_;
  return next_timer_id_ - 1;
}

void EventLoop::CancelTimer(std::uint64_t id) {
  for (auto& slot : wheel_) {
    for (auto it = slot.begin(); it != slot.end(); ++it) {
      if (it->id == id) {
        slot.erase(it);
        --active_timers_;
        return;
      }
    }
  }
}

int EventLoop::NextTimerDelayMs() const {
  if (active_timers_ == 0) return -1;
  // A timer in the slot the cursor sits on fires only after a full
  // revolution (AdvanceWheel moves first, then drains), so offset 0
  // means kWheelSlots ticks, not zero.
  std::uint64_t best_ticks = ~std::uint64_t{0};
  for (std::size_t s = 0; s < kWheelSlots; ++s) {
    if (wheel_[s].empty()) continue;
    const std::size_t off = (s + kWheelSlots - wheel_pos_) % kWheelSlots;
    const std::uint64_t base = off == 0 ? kWheelSlots : off;
    for (const Timer& t : wheel_[s])
      best_ticks = std::min(
          best_ticks,
          base + static_cast<std::uint64_t>(t.rounds) * kWheelSlots);
  }
  const std::int64_t due =
      wheel_time_ms_ + static_cast<std::int64_t>(best_ticks) * kTickMs;
  const std::int64_t delay = due - NowMs();
  return delay < 0 ? 0 : static_cast<int>(delay);
}

void EventLoop::AdvanceWheel() {
  const std::int64_t now = NowMs();
  while (wheel_time_ms_ + kTickMs <= now) {
    wheel_time_ms_ += kTickMs;
    wheel_pos_ = (wheel_pos_ + 1) % kWheelSlots;
    auto& slot = wheel_[wheel_pos_];
    // Timers still owed whole revolutions stay; due ones fire.  Fire
    // outside the slot mutation (a callback may AddTimer into any slot,
    // including this one).
    std::vector<Timer> due;
    for (auto it = slot.begin(); it != slot.end();) {
      if (it->rounds == 0) {
        due.push_back(std::move(*it));
        it = slot.erase(it);
      } else {
        --it->rounds;
        ++it;
      }
    }
    active_timers_ -= due.size();
    // Timer lag: how far behind its slot deadline (the wheel's notion of
    // now) real time had drifted when the timer fired.  Recorded per
    // fired timer, through the attached clock's unit (nanoseconds).
    if (sink_.clock != nullptr && sink_.timer_lag != nullptr &&
        !due.empty()) {
      const std::int64_t lag_ms = now - wheel_time_ms_;
      const std::uint64_t lag_ns =
          lag_ms > 0 ? static_cast<std::uint64_t>(lag_ms) * 1000000u : 0;
      for (std::size_t i = 0; i < due.size(); ++i)
        sink_.timer_lag->Record(lag_ns);
    }
    for (Timer& t : due) t.cb();
    if (!running_) return;
  }
}

int EventLoop::Run() {
  running_ = true;
  std::vector<pollfd> fds;
  std::vector<int> order;
  while (running_) {
    fds.clear();
    order.clear();
    for (const auto& [fd, w] : watches_) {
      pollfd p;
      p.fd = fd;
      p.events = static_cast<short>(POLLIN | (w.want_write ? POLLOUT : 0));
      p.revents = 0;
      fds.push_back(p);
      order.push_back(fd);
    }
    // Sleep until the nearest timer deadline (fd readiness wakes poll
    // regardless), bounded by kIdleTimeoutMs so the wheel clock never
    // drifts far; with nothing to wait for, a short nap keeps a bare
    // loop responsive to Stop() from a signal-free test harness.
    int timeout;
    if (active_timers_ > 0)
      timeout = std::min(NextTimerDelayMs(), kIdleTimeoutMs);
    else
      timeout = watches_.empty() ? 10 : kIdleTimeoutMs;
    const int n = ::poll(fds.data(), fds.size(), timeout);
    // One "poll iteration" is everything between poll(2) returning and
    // the loop sleeping again: the wheel catch-up plus every ready-fd
    // dispatch.  Its duration is the stall a peer frame can experience
    // behind this process, hence the max-stall gauge.
    const std::uint64_t iter_start =
        sink_.clock != nullptr ? sink_.clock->NowNanos() : 0;
    AdvanceWheel();
    if (!running_) break;
    if (n <= 0) {
      RecordIteration(iter_start);
      continue;
    }
    for (std::size_t i = 0; i < fds.size(); ++i) {
      if (fds[i].revents == 0) continue;
      // The callback may Unwatch any fd (including its own); re-check
      // registration before each dispatch.
      if (fds[i].revents & (POLLIN | POLLHUP | POLLERR)) {
        const auto it = watches_.find(order[i]);
        if (it != watches_.end() && it->second.on_readable)
          it->second.on_readable();
      }
      if (!running_) break;
      if (fds[i].revents & POLLOUT) {
        const auto it = watches_.find(order[i]);
        if (it != watches_.end() && it->second.want_write &&
            it->second.on_writable)
          it->second.on_writable();
      }
      if (!running_) break;
    }
    RecordIteration(iter_start);
  }
  return stop_code_;
}

void EventLoop::RecordIteration(std::uint64_t iter_start) {
  if (sink_.clock == nullptr) return;
  const std::uint64_t now = sink_.clock->NowNanos();
  const std::uint64_t dur = now >= iter_start ? now - iter_start : 0;
  if (sink_.poll_iter != nullptr) sink_.poll_iter->Record(dur);
  if (sink_.max_stall_ns != nullptr && dur > *sink_.max_stall_ns)
    *sink_.max_stall_ns = dur;
}

void EventLoop::Stop(int code) {
  running_ = false;
  stop_code_ = code;
}

}  // namespace webwave
