#include "netd/epoch_plan.h"

#include <algorithm>

#include "core/webwave_batch.h"
#include "fault/fault_projector.h"
#include "serve/closed_loop.h"
#include "serve/request_gen.h"
#include "util/check.h"
#include "wire/quota_wire.h"

namespace webwave {

ProcessFaultPlan BuildEpochPlan(NetdClusterConfig* config,
                                const EpochPlanOptions& options) {
  WEBWAVE_REQUIRE(options.epochs >= 1 && options.requests_per_epoch > 0,
                  "an epoch plan needs epochs and a block length");
  const RoutingTree tree = RoutingTree::FromParents(config->parents);
  const int servers = config->server_count;

  ProcessFaultPlan plan;
  if (options.inject_faults) {
    plan = BuildProcessFaultPlan(servers, options.epochs, options.faults);
  } else {
    plan.kill_at.resize(static_cast<std::size_t>(options.epochs));
    plan.restart_at.resize(static_cast<std::size_t>(options.epochs));
    plan.dead_at.assign(
        static_cast<std::size_t>(options.epochs),
        std::vector<bool>(static_cast<std::size_t>(servers), false));
  }

  // The dead servers' shards under the *base* map are what crashes at
  // the node level: re-homed adopters own those nodes but serve them as
  // down, burning failover attempts exactly like the oracle.
  std::vector<std::vector<NodeId>> shard(static_cast<std::size_t>(servers));
  for (NodeId v = 0; v < tree.size(); ++v)
    shard[static_cast<std::size_t>(
              config->owner[static_cast<std::size_t>(v)])]
        .push_back(v);

  // The control node's engine: a flat guess that learns purely from the
  // folded request stream, one control epoch per served block.
  std::vector<std::vector<double>> guess(
      static_cast<std::size_t>(config->docs));
  for (auto& lane : guess)
    lane.assign(static_cast<std::size_t>(tree.size()), 1e-3);
  WebWaveOptions wopt;
  wopt.threads = 1;
  BatchWebWaveSimulator sim(tree, std::move(guess), wopt);
  FaultProjector projector(tree);
  EpochDriver driver(sim, options.driver);
  driver.AttachFaults(&projector);
  ArrivalFold fold(tree.size(), config->docs);

  config->epochs.clear();
  std::vector<Request> block(
      static_cast<std::size_t>(options.requests_per_epoch));
  std::uint64_t pos = 0;
  for (int e = 0; e < options.epochs; ++e) {
    // Node-level transitions entering this epoch: every killed server's
    // shard crashes, every restarted one's recovers.  Shards are
    // disjoint, so one sort by node gives the ascending order the
    // projector's event-proportional refresh expects.
    std::vector<FaultEvent> events;
    for (const int s : plan.kill_at[static_cast<std::size_t>(e)])
      for (const NodeId v : shard[static_cast<std::size_t>(s)])
        events.push_back(FaultEvent{FaultKind::kCrash, v});
    for (const int s : plan.restart_at[static_cast<std::size_t>(e)])
      for (const NodeId v : shard[static_cast<std::size_t>(s)])
        events.push_back(FaultEvent{FaultKind::kRecover, v});
    std::sort(events.begin(), events.end(),
              [](const FaultEvent& a, const FaultEvent& b) {
                return a.node < b.node;
              });

    // The closed loop learns from the stream it is about to serve: fold
    // the epoch's own block into demand churn.
    for (std::uint64_t i = 0; i < options.requests_per_epoch; ++i)
      block[i] =
          NetdRequestAt(config->stream_seed, pos + i, tree.size(),
                        config->docs);
    fold.Count(Span<Request>(block.data(), block.size()));
    std::vector<DemandEvent> churn =
        fold.Drain(static_cast<double>(options.requests_per_epoch));
    driver.ApplyEpoch(Span<DemandEvent>(churn.data(), churn.size()),
                      Span<const FaultEvent>(events.data(), events.size()));

    NetdEpoch ep;
    ep.requests = options.requests_per_epoch;
    ep.down.assign(driver.down().begin(), driver.down().end());
    QuotaWireTable::Serialize(driver.serving(), &ep.quota_blob);
    ep.owner = ReassignOwners(tree, config->owner,
                              plan.dead_at[static_cast<std::size_t>(e)]);
    ep.kill_servers = plan.kill_at[static_cast<std::size_t>(e)];
    ep.restart_servers = plan.restart_at[static_cast<std::size_t>(e)];
    config->epochs.push_back(std::move(ep));
    pos += options.requests_per_epoch;
  }

  // Boot state = epoch 0 (fault-free by construction).
  config->quota_blob = config->epochs[0].quota_blob;
  config->down = config->epochs[0].down;
  config->total_requests = pos;
  return plan;
}

}  // namespace webwave
