// FrameConn — a non-blocking stream socket speaking wire/codec.h frames.
//
// Reads accumulate into a buffer and are cut into frames by
// MessageCodec::Decode (kNeedMore keeps bytes for the next readable
// event; kError is a protocol violation and poisons the connection).
// Writes append encoded frames to an output buffer and flush as much as
// the socket accepts; the owner toggles the event loop's write interest
// off `want_write()` after each send/flush.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "wire/codec.h"
#include "wire/message.h"

namespace webwave {

class FrameConn {
 public:
  explicit FrameConn(int fd) : fd_(fd) {}
  FrameConn(const FrameConn&) = delete;
  FrameConn& operator=(const FrameConn&) = delete;
  ~FrameConn();

  int fd() const { return fd_; }
  bool closed() const { return closed_; }

  // Encodes and queues one message, then flushes opportunistically.
  template <typename Message>
  void Send(const Message& m) {
    MessageCodec::Encode(m, &out_);
    Flush();
  }
  void SendControl(MsgType type) {
    MessageCodec::EncodeControl(type, &out_);
    Flush();
  }

  // Writes as much queued output as the socket accepts.  Returns false
  // when the connection died (peer reset).
  bool Flush();
  bool want_write() const { return !out_.empty(); }

  // Drains the socket and invokes on_frame for every complete frame.
  // Returns false on EOF or error (the connection is done); throws on
  // byte-garbage (a protocol violation is a bug in this fleet, not an
  // operational event).
  bool OnReadable(const std::function<void(const WireMessage&)>& on_frame);

 private:
  int fd_;
  bool closed_ = false;
  std::vector<std::uint8_t> in_;
  std::size_t in_start_ = 0;  // consumed prefix of in_
  std::vector<std::uint8_t> out_;
};

// Makes fd non-blocking (and close-on-exec); returns fd.
int MakeNonBlocking(int fd);

}  // namespace webwave
