// FrameConn — a non-blocking stream socket speaking wire/codec.h frames.
//
// Reads accumulate into a buffer and are cut into frames by
// MessageCodec::Decode (kNeedMore keeps bytes for the next readable
// event; kError is a protocol violation and poisons the connection).
// Writes append encoded frames to an output buffer and flush as much as
// the socket accepts; the owner toggles the event loop's write interest
// off `want_write()` after each send/flush.
//
// Robustness contract (PR 9): a short write leaves the unsent suffix
// queued and the next Flush resumes mid-frame at the exact byte offset —
// frames can never interleave because there is exactly one output buffer
// and writes always start at its consumed-prefix cursor.  EPIPE /
// ECONNRESET mid-frame (the peer died) marks the connection closed and
// returns false — a clean conn-down event the owner handles, never a
// crash (the daemons ignore SIGPIPE).  While `connecting` is set the
// conn is corked: Send() queues but nothing touches the socket until
// the non-blocking connect completes and the owner uncorks.
//
// outbox_bytes()/outbox_peak() expose the queued-output depth for the
// daemon's watermark policy: a forward that would push a peer conn past
// the high-watermark is shed into the failover path instead of buffering
// unboundedly behind a slow or dead peer.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "wire/codec.h"
#include "wire/message.h"

namespace webwave {

class FrameConn {
 public:
  explicit FrameConn(int fd) : fd_(fd) {}
  FrameConn(const FrameConn&) = delete;
  FrameConn& operator=(const FrameConn&) = delete;
  ~FrameConn();

  int fd() const { return fd_; }
  bool closed() const { return closed_; }

  // Encodes and queues one message, then flushes opportunistically.
  template <typename Message>
  void Send(const Message& m) {
    MessageCodec::Encode(m, &out_);
    NotePeak();
    Flush();
  }
  void SendControl(MsgType type) {
    MessageCodec::EncodeControl(type, &out_);
    NotePeak();
    Flush();
  }

  // Writes as much queued output as the socket accepts.  Returns false
  // when the connection died (peer reset).
  bool Flush();
  bool want_write() const { return out_.size() > out_start_ || connecting_; }

  // Cork control for non-blocking connect: while connecting, Send()
  // queues frames but Flush() leaves the socket untouched.
  void set_connecting(bool on) { connecting_ = on; }
  bool connecting() const { return connecting_; }

  // Swaps in a fresh socket for a connect retry, keeping the queued
  // outbox.  Only legal while corked (nothing was ever written, so the
  // outbox still starts at a frame boundary and replays cleanly on the
  // new socket).  Pass -1 to park the conn with no socket between
  // backoff attempts.
  void ResetFd(int new_fd);

  // Bytes currently queued and the high-water mark since construction.
  std::size_t outbox_bytes() const { return out_.size() - out_start_; }
  std::size_t outbox_peak() const { return outbox_peak_; }

  // Drains the socket and invokes on_frame for every complete frame.
  // Returns false on EOF or error (the connection is done); throws on
  // byte-garbage (a protocol violation is a bug in this fleet, not an
  // operational event).
  bool OnReadable(const std::function<void(const WireMessage&)>& on_frame);

 private:
  void NotePeak() {
    if (outbox_bytes() > outbox_peak_) outbox_peak_ = outbox_bytes();
  }

  int fd_;
  bool closed_ = false;
  bool connecting_ = false;
  std::vector<std::uint8_t> in_;
  std::size_t in_start_ = 0;   // consumed prefix of in_
  std::vector<std::uint8_t> out_;
  std::size_t out_start_ = 0;  // consumed prefix of out_ (lazy trim)
  std::size_t outbox_peak_ = 0;
};

// Makes fd non-blocking (and close-on-exec); returns fd.
int MakeNonBlocking(int fd);

}  // namespace webwave
