// CacheServerDaemon — one forked netd process serving its shard of the
// carved tree over loopback sockets.
//
// The daemon deserializes the cluster's shared QuotaWireTable blob into
// its own single-threaded ServingPlane, installs its shard as the
// plane's segment set, and answers GetRequests with ServeWireSegment:
// requests that terminate in the shard are replied to on the arriving
// connection; walks that leave the shard are forwarded to the owning
// peer's socket, with a pending map retracing the reply hop by hop back
// to the client.  A timer-wheel cadence emits LoadGossip to the next
// server on the ring — the transport-plane heartbeat; gossip counters
// are reported but (unlike the serving counters) not oracle-compared.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "netd/cluster.h"
#include "netd/conn.h"
#include "netd/event_loop.h"
#include "obs/metric_registry.h"

namespace webwave {

class CacheServerDaemon {
 public:
  // Takes ownership of listen_fd.  `ports` are every server's loopback
  // ports (index = server), for lazy peer connects.
  CacheServerDaemon(const NetdClusterConfig& config, int server_index,
                    int listen_fd, std::vector<std::uint16_t> ports);
  ~CacheServerDaemon();

  // Serves until a kShutdown frame arrives.  Returns the exit code.
  int Run();

 private:
  void OnAcceptable();
  void AdoptConn(int fd);
  void DropConn(int fd);
  void UpdateWriteInterest(int fd);
  void OnFrame(int from_fd, const WireMessage& msg);
  void HandleRequest(int from_fd, const GetRequest& req);
  // The connection to peer server `s`, connecting (and saying Hello) on
  // first use.
  FrameConn* ConnTo(int s);
  void ScheduleGossip();
  void GossipTick();
  WireCounters Counters() const;

  const NetdClusterConfig& config_;
  const int index_;
  int listen_fd_;
  std::vector<std::uint16_t> ports_;

  RoutingTree tree_;
  std::unique_ptr<ServingPlane> plane_;
  std::vector<NodeId> shard_;  // nodes this daemon owns

  EventLoop loop_;
  std::unordered_map<int, std::unique_ptr<FrameConn>> conns_;
  std::vector<int> peer_fd_;  // server -> outgoing conn fd, -1 if none
  // req_id -> fd the request arrived on; how a reply retraces the
  // forward chain.  Walks climb the tree, preorder positions only
  // decrease, so a request visits each shard at most once and the map
  // holds at most one entry per in-flight request.
  std::unordered_map<std::uint64_t, int> pending_;

  std::unordered_map<NodeId, double> gossip_heard_;
  std::uint32_t gossip_epoch_ = 0;
  // The daemon's metrics live in a MetricRegistry: the plane publishes
  // its serving counters under "serve." (AttachRegistry) and the
  // transport-level extras are registered here — Counters() reads the
  // registry, so kStatsReply and the registry can never disagree.
  MetricRegistry registry_;
  MetricRegistry::Id reg_net_forwards_{}, reg_gossip_sent_{};
};

}  // namespace webwave
