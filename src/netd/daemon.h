// CacheServerDaemon — one forked netd process serving its shard of the
// carved tree over loopback sockets.
//
// The daemon deserializes the cluster's shared QuotaWireTable blob into
// its own single-threaded ServingPlane, installs its shard as the
// plane's segment set, and answers GetRequests with ServeWireSegment:
// requests that terminate in the shard are replied to on the arriving
// connection; walks that leave the shard are forwarded to the owning
// peer's socket, with a pending map retracing the reply hop by hop back
// to the client.  A timer-wheel cadence emits LoadGossip to the next
// server on the ring — the transport-plane heartbeat; gossip counters
// are reported but (unlike the serving counters) not oracle-compared.
//
// Survivability (PR 9) — see src/netd/README.md for the full state
// machine:
//   * Peer connects are non-blocking with a timer-wheel deadline; while
//     connecting the FrameConn is corked, so forwards queue as whole
//     frames and replay cleanly if the socket has to be remade.  A
//     failed attempt schedules a retry under the same counter-hash
//     dither law as serving backoff (1 ms slots), so every daemon's
//     reconnect schedule is a pure function of (server pair, attempt).
//   * A forward that would push a peer conn's outbox past the
//     watermark is shed into the failover path: the origin gets a
//     synthesized kDropped reply and netd.shed_forwards counts it; the
//     plane's oracle-compared counters are never touched.
//   * Epoch control frames keep a (possibly restarted) daemon current:
//     kQuotaDelta patches the boot table row-by-row (bit-exact whole-row
//     splice) and refreshes the plane; kEpochUpdate installs the down
//     set and the re-homed ownership map as base + sparse overrides.
//     A loadgen Hello is answered with Hello{kServer, index, epoch} —
//     the rejoin handshake that tells the control node which table the
//     daemon is serving from.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "netd/cluster.h"
#include "netd/conn.h"
#include "netd/event_loop.h"
#include "obs/clock.h"
#include "obs/flight_recorder.h"
#include "obs/latency_histogram.h"
#include "obs/metric_registry.h"
#include "wire/quota_wire.h"

namespace webwave {

class CacheServerDaemon {
 public:
  // Takes ownership of listen_fd.  `ports` are every server's loopback
  // ports (index = server), for lazy peer connects.
  CacheServerDaemon(const NetdClusterConfig& config, int server_index,
                    int listen_fd, std::vector<std::uint16_t> ports);
  ~CacheServerDaemon();

  // Serves until a kShutdown frame arrives.  Returns the exit code.
  int Run();

 private:
  // Outgoing peer connection lifecycle: kIdle (no socket) ->
  // kConnecting (non-blocking connect or backoff wait; conn corked) ->
  // kLive (uncorked, flushing).  A live conn that dies goes back to
  // kIdle with its outbox discarded (a partial frame may have left, so
  // the queue cannot be replayed); the next forward reconnects.
  struct PeerLink {
    enum class St : std::uint8_t { kIdle, kConnecting, kLive };
    St st = St::kIdle;
    std::unique_ptr<FrameConn> conn;
    std::uint32_t attempts = 0;  // failed connects since last success
    std::uint64_t timer = 0;     // connect-deadline or backoff timer id
    bool timer_armed = false;
  };

  void OnAcceptable();
  void AdoptConn(int fd);
  void DropConn(int fd);
  void UpdateWriteInterest(int fd);
  void OnFrame(int from_fd, const WireMessage& msg);
  void DispatchFrame(int from_fd, const WireMessage& msg);
  void HandleRequest(int from_fd, const GetRequest& req);
  // The connection to peer server `s`, starting a non-blocking connect
  // (and queueing Hello) on first use.  Always returns a conn frames can
  // be queued on; it may still be corked.
  FrameConn* ConnTo(int s);
  void StartConnect(int s);
  void CheckConnect(int s);     // writable while connecting: SO_ERROR
  void FinishConnect(int s);    // uncork, watch, flush
  void ConnectFailed(int s);    // park + counter-hash backoff retry
  void PeerConnDown(int s);     // a live peer conn died
  void UpdatePeerWriteInterest(int s);
  void CancelPeerTimer(int s);
  // Dither-phased retry delay in ms for attempt `attempt` to server `s`
  // — same hash law as serving backoff, 1 ms slots.
  std::uint64_t ReconnectDelayMs(int s, std::uint32_t attempt) const;
  void ApplyQuotaDelta(const QuotaDelta& delta);
  void ApplyEpochUpdate(const EpochUpdate& update);
  void ScheduleGossip();
  void GossipTick();
  void NoteOutboxPeak(const FrameConn& c);
  WireCounters Counters() const;
  // Stamps this daemon's index into a ring snapshot for the wire.
  FlightReply FlightSnapshot();
  void DumpFlightOnShutdown();

  const NetdClusterConfig& config_;
  const int index_;
  int listen_fd_;
  std::vector<std::uint16_t> ports_;

  RoutingTree tree_;
  std::unique_ptr<ServingPlane> plane_;
  std::vector<NodeId> shard_;  // nodes this daemon owns
  // Epoch state: the table the plane serves from (patched in place by
  // kQuotaDelta), the current ownership map (base + kEpochUpdate
  // overrides) and which epoch both belong to.  A fresh boot is always
  // epoch 0 — the shared boot blob and base owner map.
  QuotaSnapshot table_;
  std::vector<int> owner_;
  std::uint32_t epoch_ = 0;

  EventLoop loop_;
  // Accepted (incoming) connections, keyed by fd.  Outgoing peer conns
  // live in peers_ instead so they survive socket retries.
  std::unordered_map<int, std::unique_ptr<FrameConn>> conns_;
  std::vector<PeerLink> peers_;  // server -> outgoing link
  // req_id -> fd the request arrived on; how a reply retraces the
  // forward chain.  Walks climb the tree, preorder positions only
  // decrease, so a request visits each shard at most once and the map
  // holds at most one entry per in-flight request.
  std::unordered_map<std::uint64_t, int> pending_;

  std::unordered_map<NodeId, double> gossip_heard_;
  std::uint32_t gossip_epoch_ = 0;
  // The daemon's metrics live in a MetricRegistry: the plane publishes
  // its serving counters under "serve." (AttachRegistry) and the
  // transport-level extras are registered here — Counters() reads the
  // registry, so kStatsReply and the registry can never disagree.
  MetricRegistry registry_;
  MetricRegistry::Id reg_net_forwards_{}, reg_gossip_sent_{};
  MetricRegistry::Id reg_shed_forwards_{}, reg_reconnects_{};
  MetricRegistry::Id reg_outbox_peak_{};  // gauge: high-water mark, bytes

  // The latency plane (PR 10).  Daemons run in real time, so timing data
  // is real wall-clock — it ships over the wire and into dumps but never
  // into an identity assertion.  All histograms live in a
  // HistogramRegistry so exposition and the wire read the same store.
  SteadyClock clock_;
  HistogramRegistry hists_;
  HistogramRegistry::Id hist_queue_delay_{};  // frame read -> handler start
  HistogramRegistry::Id hist_serve_{};        // kGetRequest service time
  HistogramRegistry::Id hist_control_{};      // non-data frame service time
  HistogramRegistry::Id hist_poll_iter_{};    // event-loop dispatch duration
  HistogramRegistry::Id hist_timer_lag_{};    // timer fire lag
  std::uint64_t max_stall_ns_ = 0;            // event-loop max-stall gauge
  std::uint64_t read_batch_start_ns_ = 0;     // current read batch's t0
  FlightRecorder flight_;
};

}  // namespace webwave
