#include "netd/conn.h"

#include <errno.h>
#include <fcntl.h>
#include <unistd.h>

#include <cstring>

#include "util/check.h"

namespace webwave {

FrameConn::~FrameConn() {
  if (fd_ >= 0) ::close(fd_);
}

int MakeNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  WEBWAVE_REQUIRE(flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
                  "fcntl(O_NONBLOCK) failed");
  ::fcntl(fd, F_SETFD, FD_CLOEXEC);
  return fd;
}

void FrameConn::ResetFd(int new_fd) {
  WEBWAVE_REQUIRE(connecting_ && out_start_ == 0,
                  "ResetFd on a conn that already touched the wire");
  if (fd_ >= 0) ::close(fd_);
  fd_ = new_fd;
  closed_ = false;
  in_.clear();
  in_start_ = 0;
}

bool FrameConn::Flush() {
  if (connecting_) return true;  // corked until the connect completes
  while (out_.size() > out_start_) {
    // Resume at the consumed-prefix cursor: after a short write the
    // remaining bytes of the partial frame go out before anything
    // queued later, so frames never interleave on the wire.
    const ssize_t n =
        ::write(fd_, out_.data() + out_start_, out_.size() - out_start_);
    if (n > 0) {
      out_start_ += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    // EPIPE / ECONNRESET / EOF-ish: the peer is gone mid-frame.  A clean
    // conn-down — the owner sees false and retires the connection.
    closed_ = true;
    return false;
  }
  // Trim lazily: only once everything queued has been written, so a
  // burst of short writes costs zero memmoves.
  if (out_start_ == out_.size() && out_start_ > 0) {
    out_.clear();
    out_start_ = 0;
  }
  return true;
}

bool FrameConn::OnReadable(
    const std::function<void(const WireMessage&)>& on_frame) {
  std::uint8_t buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd_, buf, sizeof buf);
    if (n > 0) {
      in_.insert(in_.end(), buf, buf + n);
      if (static_cast<std::size_t>(n) == sizeof buf) continue;
    } else if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // drained
    } else if (n < 0 && errno == EINTR) {
      continue;
    } else {
      closed_ = true;  // EOF or reset; deliver what already arrived
    }
    break;
  }
  // Cut complete frames.  The consumed prefix is trimmed lazily so a
  // burst of small frames costs one memmove, not one per frame.
  for (;;) {
    WireMessage msg;
    std::size_t consumed = 0;
    const auto st = MessageCodec::Decode(
        in_.data() + in_start_, in_.size() - in_start_, &msg, &consumed);
    if (st == MessageCodec::DecodeStatus::kNeedMore) break;
    WEBWAVE_REQUIRE(st == MessageCodec::DecodeStatus::kOk,
                    "byte-garbage on a netd connection");
    in_start_ += consumed;
    on_frame(msg);
  }
  if (in_start_ > 0) {
    in_.erase(in_.begin(), in_.begin() + static_cast<std::ptrdiff_t>(in_start_));
    in_start_ = 0;
  }
  return !closed_;
}

}  // namespace webwave
