#include "netd/conn.h"

#include <errno.h>
#include <fcntl.h>
#include <unistd.h>

#include <cstring>

#include "util/check.h"

namespace webwave {

FrameConn::~FrameConn() {
  if (fd_ >= 0) ::close(fd_);
}

int MakeNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  WEBWAVE_REQUIRE(flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
                  "fcntl(O_NONBLOCK) failed");
  ::fcntl(fd, F_SETFD, FD_CLOEXEC);
  return fd;
}

bool FrameConn::Flush() {
  while (!out_.empty()) {
    const ssize_t n = ::write(fd_, out_.data(), out_.size());
    if (n > 0) {
      out_.erase(out_.begin(), out_.begin() + n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    if (n < 0 && errno == EINTR) continue;
    closed_ = true;
    return false;
  }
  return true;
}

bool FrameConn::OnReadable(
    const std::function<void(const WireMessage&)>& on_frame) {
  std::uint8_t buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd_, buf, sizeof buf);
    if (n > 0) {
      in_.insert(in_.end(), buf, buf + n);
      if (static_cast<std::size_t>(n) == sizeof buf) continue;
    } else if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // drained
    } else if (n < 0 && errno == EINTR) {
      continue;
    } else {
      closed_ = true;  // EOF or reset; deliver what already arrived
    }
    break;
  }
  // Cut complete frames.  The consumed prefix is trimmed lazily so a
  // burst of small frames costs one memmove, not one per frame.
  for (;;) {
    WireMessage msg;
    std::size_t consumed = 0;
    const auto st = MessageCodec::Decode(
        in_.data() + in_start_, in_.size() - in_start_, &msg, &consumed);
    if (st == MessageCodec::DecodeStatus::kNeedMore) break;
    WEBWAVE_REQUIRE(st == MessageCodec::DecodeStatus::kOk,
                    "byte-garbage on a netd connection");
    in_start_ += consumed;
    on_frame(msg);
  }
  if (in_start_ > 0) {
    in_.erase(in_.begin(), in_.begin() + static_cast<std::ptrdiff_t>(in_start_));
    in_start_ = 0;
  }
  return !closed_;
}

}  // namespace webwave
