#include "netd/cluster.h"

#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "netd/daemon.h"
#include "netd/loadgen.h"
#include "util/check.h"
#include "util/worker_pool.h"
#include "wire/quota_wire.h"

namespace webwave {

CarvedTree CarveSubtree(const RoutingTree& big, NodeId r) {
  CarvedTree out;
  out.big_ids = big.subtree(r);  // preorder, out.big_ids[0] == r
  std::vector<NodeId> to_new(static_cast<std::size_t>(big.size()), kNoNode);
  for (std::size_t i = 0; i < out.big_ids.size(); ++i)
    to_new[static_cast<std::size_t>(out.big_ids[i])] =
        static_cast<NodeId>(i);
  out.parents.resize(out.big_ids.size(), kNoNode);
  for (std::size_t i = 1; i < out.big_ids.size(); ++i)
    out.parents[i] = to_new[static_cast<std::size_t>(
        big.parent(out.big_ids[i]))];
  return out;
}

std::vector<int> PartitionOwners(const RoutingTree& tree, int servers) {
  WEBWAVE_REQUIRE(servers >= 1, "need at least one server");
  std::vector<int> owner(static_cast<std::size_t>(tree.size()), 0);
  const auto& pre = tree.preorder();
  for (int s = 0; s < servers; ++s) {
    std::size_t begin = 0, end = 0;
    WorkerPool::Partition(pre.size(), servers, s, &begin, &end);
    for (std::size_t i = begin; i < end; ++i)
      owner[static_cast<std::size_t>(pre[i])] = s;
  }
  return owner;
}

std::vector<int> ReassignOwners(const RoutingTree& tree,
                                const std::vector<int>& base,
                                const std::vector<bool>& server_dead) {
  std::vector<int> out = base;
  for (const NodeId v : tree.preorder()) {
    const std::size_t i = static_cast<std::size_t>(v);
    if (!server_dead[static_cast<std::size_t>(out[i])]) continue;
    WEBWAVE_REQUIRE(tree.parent(v) != kNoNode,
                    "the root's owner must never be dead");
    // The parent resolved earlier in preorder, so this chains up to the
    // nearest alive adopter in one assignment.
    out[i] = out[static_cast<std::size_t>(tree.parent(v))];
  }
  return out;
}

std::vector<OwnerDelta> OwnerDiff(const std::vector<int>& base,
                                  const std::vector<int>& now) {
  WEBWAVE_REQUIRE(base.size() == now.size(), "owner maps must align");
  std::vector<OwnerDelta> out;
  for (std::size_t v = 0; v < base.size(); ++v)
    if (now[v] != base[v]) {
      OwnerDelta d;
      d.node = static_cast<NodeId>(v);
      d.owner = static_cast<std::uint32_t>(now[v]);
      out.push_back(d);
    }
  return out;
}

ServingMetrics ReplayOracle(const NetdClusterConfig& config,
                            std::vector<TraceEvent>* trace,
                            std::vector<WireCounters>* epoch_counters) {
  QuotaSnapshot snapshot;
  WEBWAVE_REQUIRE(QuotaWireTable::Deserialize(config.quota_blob.data(),
                                              config.quota_blob.size(),
                                              &snapshot),
                  "oracle handed a corrupt quota blob");
  const RoutingTree tree = RoutingTree::FromParents(config.parents);
  ServingOptions opt = config.serving;
  if (opt.threads <= 0) opt.threads = 1;
  ServingPlane plane(tree, std::move(snapshot), opt);
  const auto serve_block = [&](std::uint64_t begin, std::uint64_t count) {
    std::vector<Request> batch(count);
    for (std::uint64_t i = 0; i < count; ++i)
      batch[i] = NetdRequestAt(config.stream_seed, begin + i, tree.size(),
                               config.docs);
    plane.Serve(Span<Request>(batch.data(), batch.size()));
  };
  if (config.epochs.empty()) {
    if (!config.down.empty())
      plane.SetDownNodes(
          Span<const NodeId>(config.down.data(), config.down.size()));
    serve_block(0, config.total_requests);
  } else {
    // Multi-epoch replay: each block under its epoch's table + down set
    // — exactly the state the quiesced fleet serves that block under.
    // Serve() numbers blocks continuously across calls, so req_ids stay
    // the global stream index and every admission decision matches the
    // single-shot replay.
    std::uint64_t pos = 0;
    for (std::size_t e = 0; e < config.epochs.size(); ++e) {
      const NetdEpoch& ep = config.epochs[e];
      if (e == 0) {
        WEBWAVE_REQUIRE(ep.quota_blob == config.quota_blob &&
                            ep.down == config.down,
                        "epoch 0 must equal the boot state");
      } else {
        QuotaSnapshot next;
        WEBWAVE_REQUIRE(
            QuotaWireTable::Deserialize(ep.quota_blob.data(),
                                        ep.quota_blob.size(), &next),
            "oracle handed a corrupt epoch blob");
        // Refresh's bool is "updated in place" vs "rebuilt", not success
        // — epoch tables routinely change shape as placement moves.
        plane.Refresh(std::move(next));
      }
      plane.SetDownNodes(Span<const NodeId>(ep.down.data(), ep.down.size()));
      serve_block(pos, ep.requests);
      pos += ep.requests;
      if (epoch_counters != nullptr)
        epoch_counters->push_back(CountersFromMetrics(plane.metrics()));
    }
    WEBWAVE_REQUIRE(pos == config.total_requests,
                    "epoch blocks must cover the whole stream");
  }
  if (trace != nullptr) *trace = plane.trace();
  return plane.metrics();
}

WireCounters CountersFromMetrics(const ServingMetrics& m) {
  WireCounters c;
  c.requests = m.requests;
  c.cache_served = m.cache_served;
  c.home_served = m.home_served;
  c.hop_sum = m.hop_sum;
  c.failed_attempts = m.failed_attempts;
  c.failovers = m.failovers;
  c.dropped_requests = m.dropped_requests;
  c.backoff_slots = m.backoff_slots;
  return c;
}

bool ServingCountersEqual(const WireCounters& a, const WireCounters& b) {
  return a.requests == b.requests && a.cache_served == b.cache_served &&
         a.home_served == b.home_served && a.hop_sum == b.hop_sum &&
         a.failed_attempts == b.failed_attempts &&
         a.failovers == b.failovers &&
         a.dropped_requests == b.dropped_requests &&
         a.backoff_slots == b.backoff_slots;
}

WireCounters SumCounters(const std::vector<WireCounters>& all) {
  WireCounters sum;
  for (const WireCounters& c : all) {
    sum.requests += c.requests;
    sum.cache_served += c.cache_served;
    sum.home_served += c.home_served;
    sum.hop_sum += c.hop_sum;
    sum.failed_attempts += c.failed_attempts;
    sum.failovers += c.failovers;
    sum.dropped_requests += c.dropped_requests;
    sum.backoff_slots += c.backoff_slots;
    sum.net_forwards += c.net_forwards;
    sum.gossip_sent += c.gossip_sent;
    sum.shed_forwards += c.shed_forwards;
    sum.reconnects += c.reconnects;
    sum.outbox_peak_bytes += c.outbox_peak_bytes;
  }
  return sum;
}

bool CountersMonotone(const WireCounters& a, const WireCounters& b) {
  return a.requests <= b.requests && a.cache_served <= b.cache_served &&
         a.home_served <= b.home_served && a.hop_sum <= b.hop_sum &&
         a.failed_attempts <= b.failed_attempts &&
         a.failovers <= b.failovers &&
         a.dropped_requests <= b.dropped_requests &&
         a.backoff_slots <= b.backoff_slots &&
         a.net_forwards <= b.net_forwards &&
         a.gossip_sent <= b.gossip_sent &&
         a.shed_forwards <= b.shed_forwards &&
         a.reconnects <= b.reconnects &&
         a.outbox_peak_bytes <= b.outbox_peak_bytes;
}

namespace {

// A listening socket on an ephemeral loopback port.
int ListenLoopback(std::uint16_t* port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  WEBWAVE_REQUIRE(fd >= 0, "socket() failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof addr);
  addr.sin_family = AF_INET;
  addr.sin_port = 0;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  WEBWAVE_REQUIRE(
      ::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0,
      "bind(127.0.0.1:0) failed");
  WEBWAVE_REQUIRE(::listen(fd, 128) == 0, "listen() failed");
  socklen_t len = sizeof addr;
  WEBWAVE_REQUIRE(
      ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0,
      "getsockname() failed");
  *port = ntohs(addr.sin_port);
  return fd;
}

}  // namespace

NetdRunResult RunNetdCluster(const NetdClusterConfig& config) {
  WEBWAVE_REQUIRE(config.server_count >= 1, "need at least one server");
  WEBWAVE_REQUIRE(config.owner.size() == config.parents.size(),
                  "owner map must cover every node");
  WEBWAVE_REQUIRE(config.serving.block_size == 1,
                  "netd requires the order-free block_size == 1 regime");
  for (const int s : config.owner)
    WEBWAVE_REQUIRE(s >= 0 && s < config.server_count,
                    "owner out of range");
  if (!config.epochs.empty()) {
    std::uint64_t sum = 0;
    for (const NetdEpoch& ep : config.epochs) sum += ep.requests;
    WEBWAVE_REQUIRE(sum == config.total_requests,
                    "epoch blocks must cover the whole stream");
    WEBWAVE_REQUIRE(config.epochs[0].kill_servers.empty() &&
                        config.epochs[0].restart_servers.empty(),
                    "faults fire at transitions; none enters epoch 0");
    WEBWAVE_REQUIRE(config.epochs[0].quota_blob == config.quota_blob &&
                        config.epochs[0].owner == config.owner &&
                        config.epochs[0].down == config.down,
                    "epoch 0 must equal the boot state");
  }

  // A daemon writing to a peer that already shut down must see EPIPE,
  // not die.  Set before forking so every process inherits it.
  ::signal(SIGPIPE, SIG_IGN);

  // Every listen socket exists before the first fork: children inherit
  // their own, the kernel queues connections until the owner polls, so
  // there is no startup ordering to get wrong.
  std::vector<int> listen_fds(static_cast<std::size_t>(config.server_count));
  std::vector<std::uint16_t> ports(
      static_cast<std::size_t>(config.server_count));
  for (int s = 0; s < config.server_count; ++s)
    listen_fds[static_cast<std::size_t>(s)] =
        ListenLoopback(&ports[static_cast<std::size_t>(s)]);

  std::vector<pid_t> pids;
  pids.reserve(static_cast<std::size_t>(config.server_count));
  for (int s = 0; s < config.server_count; ++s) {
    const pid_t pid = ::fork();
    WEBWAVE_REQUIRE(pid >= 0, "fork() failed");
    if (pid == 0) {
      for (int t = 0; t < config.server_count; ++t)
        if (t != s) ::close(listen_fds[static_cast<std::size_t>(t)]);
      CacheServerDaemon daemon(config, s,
                               listen_fds[static_cast<std::size_t>(s)],
                               ports);
      // _exit, not exit: skip the parent's inherited atexit chain (gtest,
      // stdio flushing) — the daemon's state is its counters, already
      // reported over the wire.
      ::_exit(daemon.Run());
    }
    pids.push_back(pid);
  }
  // The parent keeps every listen socket open for the whole run: a
  // restarted daemon re-forks onto the SAME fd (and port), and while a
  // daemon is dead the kernel backlog queues peer connects instead of
  // refusing them — the fleet rides out the outage with no port races.

  NetdRunResult result;
  LoadgenClient loadgen(config, ports);
  loadgen.SetFaultHooks(
      [&](int s) {
        const pid_t pid = pids[static_cast<std::size_t>(s)];
        WEBWAVE_REQUIRE(pid > 0, "killing a server that is not running");
        ::kill(pid, SIGKILL);
        int status = 0;
        pid_t r;
        do {
          r = ::waitpid(pid, &status, 0);
        } while (r < 0 && errno == EINTR);
        WEBWAVE_REQUIRE(r == pid, "waitpid after SIGKILL failed");
        pids[static_cast<std::size_t>(s)] = -1;
      },
      [&](int s, const std::vector<int>& loadgen_fds) {
        WEBWAVE_REQUIRE(pids[static_cast<std::size_t>(s)] < 0,
                        "restarting a server that is still running");
        const pid_t pid = ::fork();
        WEBWAVE_REQUIRE(pid >= 0, "fork() for restart failed");
        if (pid == 0) {
          for (int t = 0; t < config.server_count; ++t)
            if (t != s) ::close(listen_fds[static_cast<std::size_t>(t)]);
          // The child also inherited the loadgen's live sockets; close
          // them or the fleet's EOFs would never fire.
          for (const int fd : loadgen_fds) ::close(fd);
          CacheServerDaemon daemon(config, s,
                                   listen_fds[static_cast<std::size_t>(s)],
                                   ports);
          ::_exit(daemon.Run());
        }
        pids[static_cast<std::size_t>(s)] = pid;
      });
  bool ok = loadgen.Run(&result);

  for (const pid_t pid : pids) {
    if (pid < 0) continue;  // killed mid-run and already reaped
    int status = 0;
    pid_t r;
    do {
      r = ::waitpid(pid, &status, 0);
    } while (r < 0 && errno == EINTR);
    ok = ok && r == pid && WIFEXITED(status) && WEXITSTATUS(status) == 0;
  }
  for (const int fd : listen_fds) ::close(fd);

  // The fleet total includes daemons killed mid-run: their pre-kill
  // scrapes are exactly their final state (the boundary was quiesced),
  // so fleet = live finals + retired holds across faults.
  std::vector<WireCounters> every = result.per_server;
  every.insert(every.end(), result.retired.begin(), result.retired.end());
  result.fleet = SumCounters(every);
  // Per-daemon scrapes arrive in completion order within each shard;
  // across shards the only deterministic total order is the canonical
  // one — the same order ReplayOracle's single plane emits.
  CanonicalizeTrace(&result.trace);
  result.ok = ok;
  return result;
}

}  // namespace webwave
