#include "netd/cluster.h"

#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "netd/daemon.h"
#include "netd/loadgen.h"
#include "util/check.h"
#include "util/worker_pool.h"
#include "wire/quota_wire.h"

namespace webwave {

CarvedTree CarveSubtree(const RoutingTree& big, NodeId r) {
  CarvedTree out;
  out.big_ids = big.subtree(r);  // preorder, out.big_ids[0] == r
  std::vector<NodeId> to_new(static_cast<std::size_t>(big.size()), kNoNode);
  for (std::size_t i = 0; i < out.big_ids.size(); ++i)
    to_new[static_cast<std::size_t>(out.big_ids[i])] =
        static_cast<NodeId>(i);
  out.parents.resize(out.big_ids.size(), kNoNode);
  for (std::size_t i = 1; i < out.big_ids.size(); ++i)
    out.parents[i] = to_new[static_cast<std::size_t>(
        big.parent(out.big_ids[i]))];
  return out;
}

std::vector<int> PartitionOwners(const RoutingTree& tree, int servers) {
  WEBWAVE_REQUIRE(servers >= 1, "need at least one server");
  std::vector<int> owner(static_cast<std::size_t>(tree.size()), 0);
  const auto& pre = tree.preorder();
  for (int s = 0; s < servers; ++s) {
    std::size_t begin = 0, end = 0;
    WorkerPool::Partition(pre.size(), servers, s, &begin, &end);
    for (std::size_t i = begin; i < end; ++i)
      owner[static_cast<std::size_t>(pre[i])] = s;
  }
  return owner;
}

ServingMetrics ReplayOracle(const NetdClusterConfig& config,
                            std::vector<TraceEvent>* trace) {
  QuotaSnapshot snapshot;
  WEBWAVE_REQUIRE(QuotaWireTable::Deserialize(config.quota_blob.data(),
                                              config.quota_blob.size(),
                                              &snapshot),
                  "oracle handed a corrupt quota blob");
  const RoutingTree tree = RoutingTree::FromParents(config.parents);
  ServingOptions opt = config.serving;
  opt.threads = 1;
  ServingPlane plane(tree, std::move(snapshot), opt);
  if (!config.down.empty())
    plane.SetDownNodes(
        Span<const NodeId>(config.down.data(), config.down.size()));
  std::vector<Request> batch(config.total_requests);
  for (std::uint64_t i = 0; i < config.total_requests; ++i)
    batch[i] = NetdRequestAt(config.stream_seed, i, tree.size(), config.docs);
  plane.Serve(Span<Request>(batch.data(), batch.size()));
  if (trace != nullptr) *trace = plane.trace();
  return plane.metrics();
}

WireCounters CountersFromMetrics(const ServingMetrics& m) {
  WireCounters c;
  c.requests = m.requests;
  c.cache_served = m.cache_served;
  c.home_served = m.home_served;
  c.hop_sum = m.hop_sum;
  c.failed_attempts = m.failed_attempts;
  c.failovers = m.failovers;
  c.dropped_requests = m.dropped_requests;
  c.backoff_slots = m.backoff_slots;
  return c;
}

bool ServingCountersEqual(const WireCounters& a, const WireCounters& b) {
  return a.requests == b.requests && a.cache_served == b.cache_served &&
         a.home_served == b.home_served && a.hop_sum == b.hop_sum &&
         a.failed_attempts == b.failed_attempts &&
         a.failovers == b.failovers &&
         a.dropped_requests == b.dropped_requests &&
         a.backoff_slots == b.backoff_slots;
}

WireCounters SumCounters(const std::vector<WireCounters>& all) {
  WireCounters sum;
  for (const WireCounters& c : all) {
    sum.requests += c.requests;
    sum.cache_served += c.cache_served;
    sum.home_served += c.home_served;
    sum.hop_sum += c.hop_sum;
    sum.failed_attempts += c.failed_attempts;
    sum.failovers += c.failovers;
    sum.dropped_requests += c.dropped_requests;
    sum.backoff_slots += c.backoff_slots;
    sum.net_forwards += c.net_forwards;
    sum.gossip_sent += c.gossip_sent;
  }
  return sum;
}

bool CountersMonotone(const WireCounters& a, const WireCounters& b) {
  return a.requests <= b.requests && a.cache_served <= b.cache_served &&
         a.home_served <= b.home_served && a.hop_sum <= b.hop_sum &&
         a.failed_attempts <= b.failed_attempts &&
         a.failovers <= b.failovers &&
         a.dropped_requests <= b.dropped_requests &&
         a.backoff_slots <= b.backoff_slots &&
         a.net_forwards <= b.net_forwards &&
         a.gossip_sent <= b.gossip_sent;
}

namespace {

// A listening socket on an ephemeral loopback port.
int ListenLoopback(std::uint16_t* port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  WEBWAVE_REQUIRE(fd >= 0, "socket() failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof addr);
  addr.sin_family = AF_INET;
  addr.sin_port = 0;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  WEBWAVE_REQUIRE(
      ::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0,
      "bind(127.0.0.1:0) failed");
  WEBWAVE_REQUIRE(::listen(fd, 128) == 0, "listen() failed");
  socklen_t len = sizeof addr;
  WEBWAVE_REQUIRE(
      ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0,
      "getsockname() failed");
  *port = ntohs(addr.sin_port);
  return fd;
}

}  // namespace

NetdRunResult RunNetdCluster(const NetdClusterConfig& config) {
  WEBWAVE_REQUIRE(config.server_count >= 1, "need at least one server");
  WEBWAVE_REQUIRE(config.owner.size() == config.parents.size(),
                  "owner map must cover every node");
  WEBWAVE_REQUIRE(config.serving.block_size == 1,
                  "netd requires the order-free block_size == 1 regime");
  for (const int s : config.owner)
    WEBWAVE_REQUIRE(s >= 0 && s < config.server_count,
                    "owner out of range");

  // A daemon writing to a peer that already shut down must see EPIPE,
  // not die.  Set before forking so every process inherits it.
  ::signal(SIGPIPE, SIG_IGN);

  // Every listen socket exists before the first fork: children inherit
  // their own, the kernel queues connections until the owner polls, so
  // there is no startup ordering to get wrong.
  std::vector<int> listen_fds(static_cast<std::size_t>(config.server_count));
  std::vector<std::uint16_t> ports(
      static_cast<std::size_t>(config.server_count));
  for (int s = 0; s < config.server_count; ++s)
    listen_fds[static_cast<std::size_t>(s)] =
        ListenLoopback(&ports[static_cast<std::size_t>(s)]);

  std::vector<pid_t> pids;
  pids.reserve(static_cast<std::size_t>(config.server_count));
  for (int s = 0; s < config.server_count; ++s) {
    const pid_t pid = ::fork();
    WEBWAVE_REQUIRE(pid >= 0, "fork() failed");
    if (pid == 0) {
      for (int t = 0; t < config.server_count; ++t)
        if (t != s) ::close(listen_fds[static_cast<std::size_t>(t)]);
      CacheServerDaemon daemon(config, s,
                               listen_fds[static_cast<std::size_t>(s)],
                               ports);
      // _exit, not exit: skip the parent's inherited atexit chain (gtest,
      // stdio flushing) — the daemon's state is its counters, already
      // reported over the wire.
      ::_exit(daemon.Run());
    }
    pids.push_back(pid);
  }
  for (const int fd : listen_fds) ::close(fd);

  NetdRunResult result;
  LoadgenClient loadgen(config, ports);
  bool ok = loadgen.Run(&result);

  for (const pid_t pid : pids) {
    int status = 0;
    pid_t r;
    do {
      r = ::waitpid(pid, &status, 0);
    } while (r < 0 && errno == EINTR);
    ok = ok && r == pid && WIFEXITED(status) && WEXITSTATUS(status) == 0;
  }

  result.fleet = SumCounters(result.per_server);
  // Per-daemon scrapes arrive in completion order within each shard;
  // across shards the only deterministic total order is the canonical
  // one — the same order ReplayOracle's single plane emits.
  CanonicalizeTrace(&result.trace);
  result.ok = ok;
  return result;
}

}  // namespace webwave
