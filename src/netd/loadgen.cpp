#include "netd/loadgen.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "util/check.h"

namespace webwave {

namespace {
// Hard ceiling on one fleet run; a hung daemon fails the run instead of
// wedging the harness (and CI) forever.
constexpr int kRunTimeoutMs = 120000;
// The load-reactive window never shrinks below this: progress must
// continue even when every reply reports a hot shard.
constexpr std::uint64_t kMinWindow = 16;
}  // namespace

LoadgenClient::LoadgenClient(const NetdClusterConfig& config,
                             std::vector<std::uint16_t> ports)
    : config_(config),
      ports_(std::move(ports)),
      nodes_(static_cast<int>(config.parents.size())) {
  WEBWAVE_REQUIRE(config_.docs > 0 && config_.total_requests > 0,
                  "loadgen needs a catalog and a stream length");
}

void LoadgenClient::ConnectAll() {
  conns_.resize(static_cast<std::size_t>(config_.server_count));
  for (int s = 0; s < config_.server_count; ++s) ConnectOne(s);
}

void LoadgenClient::ConnectOne(int s) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  WEBWAVE_REQUIRE(fd >= 0, "socket() failed");
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof addr);
  addr.sin_family = AF_INET;
  addr.sin_port = htons(ports_[static_cast<std::size_t>(s)]);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  // Blocking connect on purpose: the listen socket is held open by the
  // parent for the whole run, so the kernel completes the handshake
  // immediately (backlog) even if the daemon has not polled yet — true
  // for the initial fleet and for a just-restarted daemon alike.
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
  } while (rc < 0 && errno == EINTR);
  WEBWAVE_REQUIRE(rc == 0, "connect() to a daemon failed");
  MakeNonBlocking(fd);
  conns_[static_cast<std::size_t>(s)] = std::make_unique<FrameConn>(fd);
  loop_.WatchRead(fd, [this, s] {
    FrameConn* c = conns_[static_cast<std::size_t>(s)].get();
    if (c == nullptr) return;
    const bool alive =
        c->OnReadable([this, s](const WireMessage& m) { OnFrame(s, m); });
    if (!alive && !shutdown_sent_) {
      failed_ = true;  // a daemon died under us, unscheduled
      loop_.Stop(1);
    }
  });
  Hello hello;
  hello.kind = PeerKind::kLoadgen;
  hello.sender = 0;
  conns_[static_cast<std::size_t>(s)]->Send(hello);
  UpdateWriteInterest(s);
}

void LoadgenClient::DropServerConn(int s) {
  FrameConn* c = conns_[static_cast<std::size_t>(s)].get();
  if (c == nullptr) return;
  loop_.Unwatch(c->fd());
  conns_[static_cast<std::size_t>(s)].reset();
}

std::vector<int> LoadgenClient::OpenConnFds() const {
  std::vector<int> fds;
  for (const auto& c : conns_)
    if (c) fds.push_back(c->fd());
  return fds;
}

void LoadgenClient::ScheduleRefill() {
  loop_.AddTimer(0, [this] {
    tokens_ = config_.tokens_per_tick;
    TrySend();
    if (next_ < config_.total_requests) ScheduleRefill();
  });
}

void LoadgenClient::TrySend() {
  if (boundary_ != Boundary::kNone) return;
  while (next_ < epoch_end_ && tokens_ > 0 && in_flight_ < window_cur_) {
    const Request r =
        NetdRequestAt(config_.stream_seed, next_, nodes_, config_.docs);
    GetRequest g;
    g.req_id = next_;
    g.doc = r.doc;
    g.origin_node = r.node;
    g.ttl_hops = 0;
    g.failed = 0;
    // The client applies the same counter-hash sampling law the oracle
    // does, so the fleet traces exactly the requests the oracle traces.
    if (config_.serving.trace &&
        TraceSampled(config_.serving.trace_seed, next_,
                     config_.serving.trace_sample_shift))
      g.flags |= kGetFlagTrace;
    const int s = OwnerMap()[static_cast<std::size_t>(r.node)];
    sent_ns_[next_] = clock_.NowNanos();
    conns_[static_cast<std::size_t>(s)]->Send(g);
    UpdateWriteInterest(s);
    ++next_;
    ++in_flight_;
    --tokens_;
  }
}

void LoadgenClient::AdaptWindow(double load) {
  if (config_.load_window_factor <= 0) return;
  // `load` is the serving shard's own request tally; a fair share is
  // completed / server_count.  Hot shard -> halve, otherwise creep back
  // up.  Pacing only: decisions are order-free at block_size = 1.
  const double fair = std::max(
      static_cast<double>(completed_) /
          static_cast<double>(config_.server_count),
      1.0);
  if (load > config_.load_window_factor * fair)
    window_cur_ = std::max(window_cur_ / 2, kMinWindow);
  else if (window_cur_ < static_cast<std::uint64_t>(config_.window))
    ++window_cur_;
}

void LoadgenClient::OnFrame(int server, const WireMessage& msg) {
  switch (msg.type) {
    case MsgType::kGetReply: {
      ++completed_;
      --in_flight_;
      // Send->reply latency, attributed to the serving epoch block and
      // to the daemon that delivered the reply.  Observability only:
      // nothing downstream of these histograms affects pacing.
      const auto sent = sent_ns_.find(msg.reply.req_id);
      if (sent != sent_ns_.end()) {
        const std::uint64_t now = clock_.NowNanos();
        const std::uint64_t lat = now >= sent->second ? now - sent->second : 0;
        result_->latency_per_epoch[epoch_].Record(lat);
        result_->latency_per_server[static_cast<std::size_t>(server)].Record(
            lat);
        sent_ns_.erase(sent);
      }
      if (msg.reply.result == GetResult::kServed) {
        ++result_->client_served;
        result_->client_hop_sum += msg.reply.hops;
      } else {
        ++result_->client_dropped;
      }
      AdaptWindow(msg.reply.load);
      TrySend();
      if (completed_ != epoch_end_) break;
      // Epoch block drained — in_flight_ is zero by construction (sends
      // are capped at epoch_end_), so the fleet is quiesced.  If a live
      // scrape round is still in flight its replies must not be
      // confused with a boundary's or the final round's — defer.
      if (epoch_ + 1 < EpochCount()) {
        if (scrape_outstanding_)
          boundary_pending_ = true;
        else
          BeginBoundary();
      } else if (!stats_phase_) {
        if (scrape_outstanding_)
          final_pending_ = true;
        else
          BeginFinalStats();
      }
      break;
    }
    case MsgType::kStatsReply: {
      const LatencyHistogram reply_hist =
          msg.stats_hist.present ? msg.stats_hist.ToHistogram()
                                 : LatencyHistogram{};
      if (scrape_outstanding_) {
        // A mid-run scrape reply (FIFO per connection; no other round
        // is ever issued while a scrape is outstanding).
        scrape_sample_.per_server[static_cast<std::size_t>(server)] =
            msg.stats;
        scrape_sample_.hist_per_server[static_cast<std::size_t>(server)] =
            reply_hist;
        if (++scrape_received_ == live_count_) {
          scrape_outstanding_ = false;
          result_->samples.push_back(scrape_sample_);
          if (boundary_pending_) {
            boundary_pending_ = false;
            BeginBoundary();
          } else if (final_pending_) {
            final_pending_ = false;
            BeginFinalStats();
          }
        }
        break;
      }
      if (boundary_ == Boundary::kVictimStats) {
        // The victim's final state: the boundary is quiesced, so this
        // scrape is exactly what the daemon dies knowing.  The kills
        // must run off this stack: this frame arrived through the
        // victim's own FrameConn::OnReadable, and DoKillsAndRestarts
        // destroys that conn.
        result_->retired.push_back(msg.stats);
        result_->retired_hist.push_back(reply_hist);
        if (++victim_replies_ == victim_replies_needed_)
          loop_.AddTimer(0, [this] { DoKillsAndRestarts(); });
        break;
      }
      if (boundary_ == Boundary::kBarrier) {
        barrier_sample_.per_server[static_cast<std::size_t>(server)] =
            msg.stats;
        barrier_sample_.hist_per_server[static_cast<std::size_t>(server)] =
            reply_hist;
        if (++barrier_received_ == live_count_) FinishBoundary();
        break;
      }
      result_->per_server[static_cast<std::size_t>(server)] = msg.stats;
      result_->server_hist[static_cast<std::size_t>(server)] = reply_hist;
      if (++stats_received_ == live_count_) {
        // The end-of-run sample: what a scraper polling at this instant
        // would see, which by now is every live daemon's final tally.
        NetdStatsSample final_sample;
        final_sample.at_completed = completed_;
        final_sample.per_server = result_->per_server;
        final_sample.hist_per_server = result_->server_hist;
        result_->samples.push_back(std::move(final_sample));
        if (config_.serving.trace)
          BeginTraceDump();
        else
          BeginFlightDump();
      }
      break;
    }
    case MsgType::kTraceReply: {
      result_->trace.insert(result_->trace.end(), msg.trace.begin(),
                            msg.trace.end());
      if (boundary_ == Boundary::kVictimStats) {
        // Same re-entrancy hazard as the stats branch above: never tear
        // the delivering conn down from inside its own read callback.
        if (++victim_replies_ == victim_replies_needed_)
          loop_.AddTimer(0, [this] { DoKillsAndRestarts(); });
        break;
      }
      if (++trace_received_ == live_count_) BeginFlightDump();
      break;
    }
    case MsgType::kFlightReply: {
      // A daemon's flight ring: scraped from a victim ahead of its
      // SIGKILL (the crash-surviving copy), or from every live daemon at
      // end of run.  Events arrive already stamped with the sender's
      // node index.
      NetdRunResult::FlightDump dump;
      dump.server = server;
      dump.victim = boundary_ == Boundary::kVictimStats;
      dump.events = msg.flight.events;
      result_->flights.push_back(std::move(dump));
      if (boundary_ == Boundary::kVictimStats) {
        if (++victim_replies_ == victim_replies_needed_)
          loop_.AddTimer(0, [this] { DoKillsAndRestarts(); });
        break;
      }
      if (++flight_received_ == live_count_) Shutdown();
      break;
    }
    case MsgType::kHello: {
      // The rejoin handshake: a restarted daemon answering our Hello
      // with its identity and boot epoch.  (The initial fleet's Hello
      // replies all land before the first epoch boundary — per-conn
      // FIFO puts them ahead of epoch 0's replies — so they are simply
      // ignored here.)
      if (boundary_ != Boundary::kRejoin) break;
      WEBWAVE_REQUIRE(msg.hello.sender ==
                          static_cast<std::uint32_t>(server),
                      "rejoin Hello from the wrong daemon");
      result_->rejoin_hello_epochs.push_back(msg.hello.epoch);
      if (--rejoin_needed_ == 0) ShipEpoch();
      break;
    }
    default:
      break;  // daemons never push anything else at a client
  }
}

void LoadgenClient::ScheduleScrape() {
  loop_.AddTimer(config_.stats_scrape_period_ms, [this] {
    StartScrape();
    if (!stats_phase_ && !shutdown_sent_) ScheduleScrape();
  });
}

void LoadgenClient::StartScrape() {
  if (scrape_outstanding_ || stats_phase_ || shutdown_sent_ ||
      boundary_ != Boundary::kNone)
    return;
  scrape_outstanding_ = true;
  scrape_received_ = 0;
  scrape_sample_.at_completed = completed_;
  scrape_sample_.per_server.assign(
      static_cast<std::size_t>(config_.server_count), WireCounters{});
  scrape_sample_.hist_per_server.assign(
      static_cast<std::size_t>(config_.server_count), LatencyHistogram{});
  for (int s = 0; s < config_.server_count; ++s) {
    if (!live_[static_cast<std::size_t>(s)]) continue;
    conns_[static_cast<std::size_t>(s)]->SendControl(MsgType::kStatsRequest);
    UpdateWriteInterest(s);
  }
}

void LoadgenClient::BeginBoundary() {
  const NetdEpoch& ep = config_.epochs[epoch_ + 1];
  if (ep.kill_servers.empty()) {
    boundary_ = Boundary::kVictimStats;  // degenerate: nothing to scrape
    DoKillsAndRestarts();
    return;
  }
  boundary_ = Boundary::kVictimStats;
  victim_replies_ = 0;
  // Per victim: counters (+hist), flight ring, and — when tracing — the
  // trace buffer.  All scraped at the quiesced boundary, so together
  // they are exactly what the daemon dies knowing.
  victim_replies_needed_ =
      ep.kill_servers.size() * (config_.serving.trace ? 3u : 2u);
  for (const int s : ep.kill_servers) {
    WEBWAVE_REQUIRE(live_[static_cast<std::size_t>(s)],
                    "killing a server that is already dead");
    WEBWAVE_REQUIRE(s != 0, "server 0 owns the root and must survive");
    conns_[static_cast<std::size_t>(s)]->SendControl(MsgType::kStatsRequest);
    if (config_.serving.trace)
      conns_[static_cast<std::size_t>(s)]->SendControl(
          MsgType::kTraceRequest);
    conns_[static_cast<std::size_t>(s)]->SendControl(
        MsgType::kFlightRequest);
    UpdateWriteInterest(s);
  }
}

void LoadgenClient::DoKillsAndRestarts() {
  const NetdEpoch& ep = config_.epochs[epoch_ + 1];
  for (const int s : ep.kill_servers) {
    WEBWAVE_REQUIRE(kill_fn_ != nullptr, "no kill hook installed");
    // Drop our conn first: after SIGKILL the socket would EOF anyway,
    // and the boundary is quiesced so nothing is left unread on it.
    DropServerConn(s);
    kill_fn_(s);
    live_[static_cast<std::size_t>(s)] = false;
    --live_count_;
  }
  rejoin_needed_ = static_cast<int>(ep.restart_servers.size());
  if (rejoin_needed_ == 0) {
    ShipEpoch();
    return;
  }
  boundary_ = Boundary::kRejoin;
  for (const int s : ep.restart_servers) {
    WEBWAVE_REQUIRE(!live_[static_cast<std::size_t>(s)],
                    "restarting a server that is still live");
    WEBWAVE_REQUIRE(restart_fn_ != nullptr, "no restart hook installed");
    restart_fn_(s, OpenConnFds());
    ConnectOne(s);  // Hello goes out; the daemon's Hello reply rejoins
    live_[static_cast<std::size_t>(s)] = true;
    ++live_count_;
    server_epoch_[static_cast<std::size_t>(s)] = 0;  // fresh boot state
  }
}

void LoadgenClient::ShipEpoch() {
  const std::size_t e = epoch_ + 1;
  const NetdEpoch& ep = config_.epochs[e];
  const std::vector<OwnerDelta> reassign = OwnerDiff(config_.owner, ep.owner);
  for (int s = 0; s < config_.server_count; ++s) {
    if (!live_[static_cast<std::size_t>(s)]) continue;
    // Each daemon's delta starts from whatever table it actually has —
    // the previous epoch for survivors, the boot table for a rejoiner.
    QuotaDelta delta;
    WEBWAVE_REQUIRE(
        QuotaWireTable::DiffSnapshots(
            Snap(server_epoch_[static_cast<std::size_t>(s)]), Snap(e),
            &delta),
        "epoch snapshots must be diffable");
    delta.epoch = static_cast<std::uint32_t>(e);
    EpochUpdate up;
    up.epoch = static_cast<std::uint32_t>(e);
    up.down = ep.down;
    up.reassign = reassign;
    FrameConn* c = conns_[static_cast<std::size_t>(s)].get();
    c->Send(delta);
    c->Send(up);
    // FIFO barrier: the stats reply acknowledges that both control
    // frames above were applied before any epoch-e request arrives.
    c->SendControl(MsgType::kStatsRequest);
    UpdateWriteInterest(s);
    server_epoch_[static_cast<std::size_t>(s)] =
        static_cast<std::uint32_t>(e);
  }
  boundary_ = Boundary::kBarrier;
  barrier_received_ = 0;
  barrier_sample_.at_completed = completed_;
  barrier_sample_.per_server.assign(
      static_cast<std::size_t>(config_.server_count), WireCounters{});
  barrier_sample_.hist_per_server.assign(
      static_cast<std::size_t>(config_.server_count), LatencyHistogram{});
}

void LoadgenClient::FinishBoundary() {
  result_->epoch_samples.push_back(barrier_sample_);
  ++epoch_;
  epoch_end_ += config_.epochs[epoch_].requests;
  boundary_ = Boundary::kNone;
  TrySend();
}

void LoadgenClient::BeginFinalStats() {
  stats_phase_ = true;
  for (int s = 0; s < config_.server_count; ++s) {
    if (!live_[static_cast<std::size_t>(s)]) continue;
    conns_[static_cast<std::size_t>(s)]->SendControl(MsgType::kStatsRequest);
    UpdateWriteInterest(s);
  }
}

void LoadgenClient::BeginTraceDump() {
  trace_phase_ = true;
  for (int s = 0; s < config_.server_count; ++s) {
    if (!live_[static_cast<std::size_t>(s)]) continue;
    conns_[static_cast<std::size_t>(s)]->SendControl(MsgType::kTraceRequest);
    UpdateWriteInterest(s);
  }
}

void LoadgenClient::BeginFlightDump() {
  flight_phase_ = true;
  for (int s = 0; s < config_.server_count; ++s) {
    if (!live_[static_cast<std::size_t>(s)]) continue;
    conns_[static_cast<std::size_t>(s)]->SendControl(MsgType::kFlightRequest);
    UpdateWriteInterest(s);
  }
}

void LoadgenClient::Shutdown() {
  shutdown_sent_ = true;
  for (int s = 0; s < config_.server_count; ++s) {
    if (!live_[static_cast<std::size_t>(s)] ||
        !conns_[static_cast<std::size_t>(s)])
      continue;
    conns_[static_cast<std::size_t>(s)]->SendControl(MsgType::kShutdown);
    conns_[static_cast<std::size_t>(s)]->Flush();
  }
  loop_.Stop(0);
}

void LoadgenClient::UpdateWriteInterest(int server) {
  FrameConn* c = conns_[static_cast<std::size_t>(server)].get();
  if (c == nullptr) return;
  const int fd = c->fd();
  loop_.SetWriteInterest(fd, c->want_write(), [this, server] {
    FrameConn* c2 = conns_[static_cast<std::size_t>(server)].get();
    if (c2 == nullptr) return;
    c2->Flush();
    UpdateWriteInterest(server);
  });
}

const QuotaSnapshot& LoadgenClient::Snap(std::size_t epoch) {
  if (snaps_.empty()) {
    snaps_.resize(EpochCount());
    snap_ready_.assign(EpochCount(), false);
  }
  if (!snap_ready_[epoch]) {
    const std::vector<std::uint8_t>& blob =
        epoch == 0 ? config_.quota_blob : config_.epochs[epoch].quota_blob;
    WEBWAVE_REQUIRE(QuotaWireTable::Deserialize(blob.data(), blob.size(),
                                                &snaps_[epoch]),
                    "loadgen handed a corrupt epoch blob");
    snap_ready_[epoch] = true;
  }
  return snaps_[epoch];
}

bool LoadgenClient::Run(NetdRunResult* result) {
  result_ = result;
  result_->per_server.assign(static_cast<std::size_t>(config_.server_count),
                             WireCounters{});
  result_->latency_per_epoch.assign(EpochCount(), LatencyHistogram{});
  result_->latency_per_server.assign(
      static_cast<std::size_t>(config_.server_count), LatencyHistogram{});
  result_->server_hist.assign(static_cast<std::size_t>(config_.server_count),
                              LatencyHistogram{});
  // The client's own event loop reports into the result directly — its
  // stalls are the pacing jitter every latency sample rides on.
  EventLoop::LatencySink sink;
  sink.clock = &clock_;
  sink.poll_iter = &result_->loop_poll_iter;
  sink.timer_lag = &result_->loop_timer_lag;
  sink.max_stall_ns = &result_->loop_max_stall_ns;
  loop_.AttachLatencyPlane(sink);
  live_.assign(static_cast<std::size_t>(config_.server_count), true);
  live_count_ = config_.server_count;
  server_epoch_.assign(static_cast<std::size_t>(config_.server_count), 0);
  epoch_ = 0;
  epoch_end_ = config_.epochs.empty() ? config_.total_requests
                                      : config_.epochs[0].requests;
  window_cur_ = static_cast<std::uint64_t>(config_.window);
  ConnectAll();
  ScheduleRefill();
  if (config_.stats_scrape_period_ms > 0) ScheduleScrape();
  loop_.AddTimer(kRunTimeoutMs, [this] {
    failed_ = true;
    loop_.Stop(2);
  });
  const int code = loop_.Run();
  return code == 0 && !failed_;
}

}  // namespace webwave
