#include "netd/loadgen.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/check.h"

namespace webwave {

namespace {
// Hard ceiling on one fleet run; a hung daemon fails the run instead of
// wedging the harness (and CI) forever.
constexpr int kRunTimeoutMs = 120000;
}  // namespace

LoadgenClient::LoadgenClient(const NetdClusterConfig& config,
                             std::vector<std::uint16_t> ports)
    : config_(config),
      ports_(std::move(ports)),
      nodes_(static_cast<int>(config.parents.size())) {
  WEBWAVE_REQUIRE(config_.docs > 0 && config_.total_requests > 0,
                  "loadgen needs a catalog and a stream length");
}

void LoadgenClient::ConnectAll() {
  conns_.resize(static_cast<std::size_t>(config_.server_count));
  for (int s = 0; s < config_.server_count; ++s) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    WEBWAVE_REQUIRE(fd >= 0, "socket() failed");
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof addr);
    addr.sin_family = AF_INET;
    addr.sin_port = htons(ports_[static_cast<std::size_t>(s)]);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    int rc;
    do {
      rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
    } while (rc < 0 && errno == EINTR);
    WEBWAVE_REQUIRE(rc == 0, "connect() to a daemon failed");
    MakeNonBlocking(fd);
    conns_[static_cast<std::size_t>(s)] = std::make_unique<FrameConn>(fd);
    loop_.WatchRead(fd, [this, s] {
      FrameConn* c = conns_[static_cast<std::size_t>(s)].get();
      const bool alive =
          c->OnReadable([this, s](const WireMessage& m) { OnFrame(s, m); });
      if (!alive && !shutdown_sent_) {
        failed_ = true;  // a daemon died under us
        loop_.Stop(1);
      }
    });
    Hello hello;
    hello.kind = PeerKind::kLoadgen;
    hello.sender = 0;
    conns_[static_cast<std::size_t>(s)]->Send(hello);
    UpdateWriteInterest(s);
  }
}

void LoadgenClient::ScheduleRefill() {
  loop_.AddTimer(0, [this] {
    tokens_ = config_.tokens_per_tick;
    TrySend();
    if (next_ < config_.total_requests) ScheduleRefill();
  });
}

void LoadgenClient::TrySend() {
  while (next_ < config_.total_requests && tokens_ > 0 &&
         in_flight_ < static_cast<std::uint64_t>(config_.window)) {
    const Request r =
        NetdRequestAt(config_.stream_seed, next_, nodes_, config_.docs);
    GetRequest g;
    g.req_id = next_;
    g.doc = r.doc;
    g.origin_node = r.node;
    g.ttl_hops = 0;
    g.failed = 0;
    // The client applies the same counter-hash sampling law the oracle
    // does, so the fleet traces exactly the requests the oracle traces.
    if (config_.serving.trace &&
        TraceSampled(config_.serving.trace_seed, next_,
                     config_.serving.trace_sample_shift))
      g.flags |= kGetFlagTrace;
    const int s = config_.owner[static_cast<std::size_t>(r.node)];
    conns_[static_cast<std::size_t>(s)]->Send(g);
    UpdateWriteInterest(s);
    ++next_;
    ++in_flight_;
    --tokens_;
  }
}

void LoadgenClient::OnFrame(int server, const WireMessage& msg) {
  switch (msg.type) {
    case MsgType::kGetReply: {
      ++completed_;
      --in_flight_;
      if (msg.reply.result == GetResult::kServed) {
        ++result_->client_served;
        result_->client_hop_sum += msg.reply.hops;
      } else {
        ++result_->client_dropped;
      }
      TrySend();
      if (completed_ == config_.total_requests && !stats_phase_) {
        // Stream drained.  If a live scrape round is still in flight its
        // replies must not be confused with the final round's — defer.
        if (scrape_outstanding_)
          final_pending_ = true;
        else
          BeginFinalStats();
      }
      break;
    }
    case MsgType::kStatsReply: {
      if (scrape_outstanding_) {
        // A mid-run scrape reply (FIFO per connection; the final round
        // is never issued while a scrape is outstanding).
        scrape_sample_.per_server[static_cast<std::size_t>(server)] =
            msg.stats;
        if (++scrape_received_ == config_.server_count) {
          scrape_outstanding_ = false;
          result_->samples.push_back(scrape_sample_);
          if (final_pending_) {
            final_pending_ = false;
            BeginFinalStats();
          }
        }
        break;
      }
      result_->per_server[static_cast<std::size_t>(server)] =
          msg.stats;
      if (++stats_received_ == config_.server_count) {
        // The end-of-run sample: what a scraper polling at this instant
        // would see, which by now is every daemon's final tally.
        NetdStatsSample final_sample;
        final_sample.at_completed = completed_;
        final_sample.per_server = result_->per_server;
        result_->samples.push_back(std::move(final_sample));
        if (config_.serving.trace)
          BeginTraceDump();
        else
          Shutdown();
      }
      break;
    }
    case MsgType::kTraceReply: {
      result_->trace.insert(result_->trace.end(), msg.trace.begin(),
                            msg.trace.end());
      if (++trace_received_ == config_.server_count) Shutdown();
      break;
    }
    default:
      break;  // daemons never push anything else at a client
  }
}

void LoadgenClient::ScheduleScrape() {
  loop_.AddTimer(config_.stats_scrape_period_ms, [this] {
    StartScrape();
    if (!stats_phase_ && !shutdown_sent_) ScheduleScrape();
  });
}

void LoadgenClient::StartScrape() {
  if (scrape_outstanding_ || stats_phase_ || shutdown_sent_) return;
  scrape_outstanding_ = true;
  scrape_received_ = 0;
  scrape_sample_.at_completed = completed_;
  scrape_sample_.per_server.assign(
      static_cast<std::size_t>(config_.server_count), WireCounters{});
  for (int s = 0; s < config_.server_count; ++s) {
    conns_[static_cast<std::size_t>(s)]->SendControl(MsgType::kStatsRequest);
    UpdateWriteInterest(s);
  }
}

void LoadgenClient::BeginFinalStats() {
  stats_phase_ = true;
  for (int s = 0; s < config_.server_count; ++s) {
    conns_[static_cast<std::size_t>(s)]->SendControl(MsgType::kStatsRequest);
    UpdateWriteInterest(s);
  }
}

void LoadgenClient::BeginTraceDump() {
  trace_phase_ = true;
  for (int s = 0; s < config_.server_count; ++s) {
    conns_[static_cast<std::size_t>(s)]->SendControl(MsgType::kTraceRequest);
    UpdateWriteInterest(s);
  }
}

void LoadgenClient::Shutdown() {
  shutdown_sent_ = true;
  for (int s = 0; s < config_.server_count; ++s) {
    conns_[static_cast<std::size_t>(s)]->SendControl(MsgType::kShutdown);
    conns_[static_cast<std::size_t>(s)]->Flush();
  }
  loop_.Stop(0);
}

void LoadgenClient::UpdateWriteInterest(int server) {
  FrameConn* c = conns_[static_cast<std::size_t>(server)].get();
  const int fd = c->fd();
  loop_.SetWriteInterest(fd, c->want_write(), [this, server] {
    FrameConn* c2 = conns_[static_cast<std::size_t>(server)].get();
    c2->Flush();
    UpdateWriteInterest(server);
  });
}

bool LoadgenClient::Run(NetdRunResult* result) {
  result_ = result;
  result_->per_server.assign(static_cast<std::size_t>(config_.server_count),
                             WireCounters{});
  ConnectAll();
  ScheduleRefill();
  if (config_.stats_scrape_period_ms > 0) ScheduleScrape();
  loop_.AddTimer(kRunTimeoutMs, [this] {
    failed_ = true;
    loop_.Stop(2);
  });
  const int code = loop_.Run();
  return code == 0 && !failed_;
}

}  // namespace webwave
