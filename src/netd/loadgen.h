// LoadgenClient — the deterministic request driver for a netd fleet.
//
// Request i is the pure function NetdRequestAt(seed, i, ...), numbered
// req_id = i, and sent to the daemon owning its origin node.  Pacing is
// a token bucket refilled from the event loop's timer wheel
// (tokens_per_tick per tick) under an in-flight window, so the socket
// buffers stay bounded no matter how large the stream is.  When every
// reply is in, the client collects each daemon's WireCounters via
// kStatsRequest (and, when tracing, each daemon's TraceEvent stream via
// kTraceRequest) and shuts the fleet down with kShutdown frames.
//
// Live scraping: with stats_scrape_period_ms > 0 the client also polls
// the whole fleet's counters on a repeating timer *while requests are
// in flight*, recording each round as a NetdStatsSample.  At most one
// stats round is ever outstanding (the final round defers until a
// mid-run scrape drains), so per-connection FIFO makes every reply's
// attribution unambiguous.
//
// Multi-epoch orchestration (PR 9): with config.epochs set the client
// doubles as the fleet's control node.  At each epoch boundary it
// quiesces (in-flight drains to zero by construction: sends are capped
// at the epoch's end), scrapes any kill victim's counters and trace
// (the `retired` record — the boundary is quiesced, so this is exactly
// the victim's final state), invokes the kill/restart hooks, waits for
// each restarted daemon's rejoin Hello, ships every live daemon its
// kQuotaDelta (diffed from whatever table epoch that daemon last
// acknowledged — 0 for a fresh boot) plus the stateless kEpochUpdate,
// and runs a kStatsRequest barrier round before resuming the stream.
// Per-connection FIFO makes the barrier an acknowledgement that the
// delta and update landed.  Barrier samples keep dead servers' slots
// zero; their last state lives in NetdRunResult::retired.
//
// Determinism note: pacing shapes *when* requests enter the fleet, never
// *what* they are or how they are decided — admission runs block_size=1,
// so the counters the fleet reports are invariant to all of this timing.
// That includes the load-reactive window (load_window_factor), which
// only throttles injection when replies report hot shards.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "netd/cluster.h"
#include "netd/conn.h"
#include "netd/event_loop.h"
#include "obs/clock.h"
#include "wire/quota_wire.h"

namespace webwave {

class LoadgenClient {
 public:
  // Kill: SIGKILL + reap server s (synchronous).  Restart: re-fork
  // server s on its original listen fd; the second argument is every
  // socket fd the loadgen currently holds open, which the forked child
  // must close.
  using KillFn = std::function<void(int)>;
  using RestartFn = std::function<void(int, const std::vector<int>&)>;

  LoadgenClient(const NetdClusterConfig& config,
                std::vector<std::uint16_t> ports);

  void SetFaultHooks(KillFn kill, RestartFn restart) {
    kill_fn_ = std::move(kill);
    restart_fn_ = std::move(restart);
  }

  // Drives the whole stream, fills result's per-server counters and
  // client tallies.  Returns false if the run timed out or a connection
  // died before completion.
  bool Run(NetdRunResult* result);

 private:
  // What the current epoch-boundary handshake is waiting on.  kNone is
  // normal streaming; the other states suppress sends and periodic
  // scrapes until the boundary completes.
  enum class Boundary : std::uint8_t {
    kNone,
    kVictimStats,  // victims' pre-kill kStatsReply (+kTraceReply)
    kRejoin,       // restarted daemons' Hello replies
    kBarrier,      // post-update kStatsReply from every live daemon
  };

  void ConnectAll();
  void ConnectOne(int s);
  void DropServerConn(int s);
  std::vector<int> OpenConnFds() const;
  void ScheduleRefill();
  void TrySend();
  void AdaptWindow(double load);
  void OnFrame(int server, const WireMessage& msg);
  void UpdateWriteInterest(int server);
  // Mid-run scraping: a repeating timer fires StartScrape, which issues
  // one kStatsRequest round unless one is already in flight (or the run
  // has moved to its final phases / an epoch boundary).
  void ScheduleScrape();
  void StartScrape();
  // The epoch-boundary sequence, in firing order.
  void BeginBoundary();
  void DoKillsAndRestarts();
  void ShipEpoch();
  void FinishBoundary();
  const QuotaSnapshot& Snap(std::size_t epoch);
  std::size_t EpochCount() const {
    return config_.epochs.empty() ? 1 : config_.epochs.size();
  }
  // The epoch the stream is currently serving under (owner map source).
  const std::vector<int>& OwnerMap() const {
    return config_.epochs.empty() ? config_.owner
                                  : config_.epochs[epoch_].owner;
  }
  // The end-of-run sequence: final stats round -> trace dump (if the
  // plane traces) -> flight-ring dump -> kShutdown to every daemon.
  void BeginFinalStats();
  void BeginTraceDump();
  void BeginFlightDump();
  void Shutdown();

  const NetdClusterConfig& config_;
  std::vector<std::uint16_t> ports_;
  int nodes_ = 0;

  EventLoop loop_;
  std::vector<std::unique_ptr<FrameConn>> conns_;  // index = server

  std::uint64_t next_ = 0;       // next req_id to send
  std::uint64_t completed_ = 0;  // replies received
  std::uint64_t in_flight_ = 0;
  int tokens_ = 0;
  std::uint64_t window_cur_ = 0;  // live window (load-reactive)
  bool stats_phase_ = false;  // the *final* stats round is in flight
  int stats_received_ = 0;
  // One mid-run scrape round at a time; a completion that lands while a
  // scrape is outstanding defers the final round until it drains.
  bool scrape_outstanding_ = false;
  int scrape_received_ = 0;
  NetdStatsSample scrape_sample_;
  bool final_pending_ = false;
  bool boundary_pending_ = false;
  bool trace_phase_ = false;
  int trace_received_ = 0;
  bool flight_phase_ = false;
  int flight_received_ = 0;
  bool shutdown_sent_ = false;
  bool failed_ = false;

  // Latency plane (PR 10): send timestamps per in-flight req_id, so a
  // kGetReply can be bucketed into the per-epoch and per-server
  // histograms.  Pure observation — pacing and admission never read it.
  SteadyClock clock_;
  std::unordered_map<std::uint64_t, std::uint64_t> sent_ns_;

  // Multi-epoch state.
  std::size_t epoch_ = 0;        // epoch the stream is serving under
  std::uint64_t epoch_end_ = 0;  // stream index where this epoch ends
  Boundary boundary_ = Boundary::kNone;
  std::vector<bool> live_;
  int live_count_ = 0;
  std::vector<std::uint32_t> server_epoch_;  // table epoch per daemon
  std::size_t victim_replies_needed_ = 0;
  std::size_t victim_replies_ = 0;
  int rejoin_needed_ = 0;
  NetdStatsSample barrier_sample_;
  int barrier_received_ = 0;
  // Lazily decoded epoch tables, for diffing deltas.
  std::vector<QuotaSnapshot> snaps_;
  std::vector<bool> snap_ready_;
  KillFn kill_fn_;
  RestartFn restart_fn_;

  NetdRunResult* result_ = nullptr;
};

}  // namespace webwave
