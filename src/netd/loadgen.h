// LoadgenClient — the deterministic request driver for a netd fleet.
//
// Request i is the pure function NetdRequestAt(seed, i, ...), numbered
// req_id = i, and sent to the daemon owning its origin node.  Pacing is
// a token bucket refilled from the event loop's timer wheel
// (tokens_per_tick per tick) under a fixed in-flight window, so the
// socket buffers stay bounded no matter how large the stream is.  When
// every reply is in, the client collects each daemon's WireCounters via
// kStatsRequest and shuts the fleet down with kShutdown frames.
//
// Determinism note: pacing shapes *when* requests enter the fleet, never
// *what* they are or how they are decided — admission runs block_size=1,
// so the counters the fleet reports are invariant to all of this timing.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "netd/cluster.h"
#include "netd/conn.h"
#include "netd/event_loop.h"

namespace webwave {

class LoadgenClient {
 public:
  LoadgenClient(const NetdClusterConfig& config,
                std::vector<std::uint16_t> ports);

  // Drives the whole stream, fills result's per-server counters and
  // client tallies.  Returns false if the run timed out or a connection
  // died before completion.
  bool Run(NetdRunResult* result);

 private:
  void ConnectAll();
  void ScheduleRefill();
  void TrySend();
  void OnFrame(int server, const WireMessage& msg);
  void UpdateWriteInterest(int server);

  const NetdClusterConfig& config_;
  std::vector<std::uint16_t> ports_;
  int nodes_ = 0;

  EventLoop loop_;
  std::vector<std::unique_ptr<FrameConn>> conns_;  // index = server

  std::uint64_t next_ = 0;       // next req_id to send
  std::uint64_t completed_ = 0;  // replies received
  std::uint64_t in_flight_ = 0;
  int tokens_ = 0;
  bool stats_phase_ = false;
  int stats_received_ = 0;
  bool failed_ = false;

  NetdRunResult* result_ = nullptr;
};

}  // namespace webwave
