// LoadgenClient — the deterministic request driver for a netd fleet.
//
// Request i is the pure function NetdRequestAt(seed, i, ...), numbered
// req_id = i, and sent to the daemon owning its origin node.  Pacing is
// a token bucket refilled from the event loop's timer wheel
// (tokens_per_tick per tick) under a fixed in-flight window, so the
// socket buffers stay bounded no matter how large the stream is.  When
// every reply is in, the client collects each daemon's WireCounters via
// kStatsRequest (and, when tracing, each daemon's TraceEvent stream via
// kTraceRequest) and shuts the fleet down with kShutdown frames.
//
// Live scraping: with stats_scrape_period_ms > 0 the client also polls
// the whole fleet's counters on a repeating timer *while requests are
// in flight*, recording each round as a NetdStatsSample.  At most one
// stats round is ever outstanding (the final round defers until a
// mid-run scrape drains), so per-connection FIFO makes every reply's
// attribution unambiguous.
//
// Determinism note: pacing shapes *when* requests enter the fleet, never
// *what* they are or how they are decided — admission runs block_size=1,
// so the counters the fleet reports are invariant to all of this timing.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "netd/cluster.h"
#include "netd/conn.h"
#include "netd/event_loop.h"

namespace webwave {

class LoadgenClient {
 public:
  LoadgenClient(const NetdClusterConfig& config,
                std::vector<std::uint16_t> ports);

  // Drives the whole stream, fills result's per-server counters and
  // client tallies.  Returns false if the run timed out or a connection
  // died before completion.
  bool Run(NetdRunResult* result);

 private:
  void ConnectAll();
  void ScheduleRefill();
  void TrySend();
  void OnFrame(int server, const WireMessage& msg);
  void UpdateWriteInterest(int server);
  // Mid-run scraping: a repeating timer fires StartScrape, which issues
  // one kStatsRequest round unless one is already in flight (or the run
  // has moved to its final phases).
  void ScheduleScrape();
  void StartScrape();
  // The end-of-run sequence: final stats round -> trace dump (if the
  // plane traces) -> kShutdown to every daemon.
  void BeginFinalStats();
  void BeginTraceDump();
  void Shutdown();

  const NetdClusterConfig& config_;
  std::vector<std::uint16_t> ports_;
  int nodes_ = 0;

  EventLoop loop_;
  std::vector<std::unique_ptr<FrameConn>> conns_;  // index = server

  std::uint64_t next_ = 0;       // next req_id to send
  std::uint64_t completed_ = 0;  // replies received
  std::uint64_t in_flight_ = 0;
  int tokens_ = 0;
  bool stats_phase_ = false;  // the *final* stats round is in flight
  int stats_received_ = 0;
  // One mid-run scrape round at a time; a completion that lands while a
  // scrape is outstanding defers the final round until it drains.
  bool scrape_outstanding_ = false;
  int scrape_received_ = 0;
  NetdStatsSample scrape_sample_;
  bool final_pending_ = false;
  bool trace_phase_ = false;
  int trace_received_ = 0;
  bool shutdown_sent_ = false;
  bool failed_ = false;

  NetdRunResult* result_ = nullptr;
};

}  // namespace webwave
