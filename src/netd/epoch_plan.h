// BuildEpochPlan — the closed-loop control plane behind a multi-epoch
// netd run.
//
// One diffusion engine (BatchWebWaveSimulator + EpochDriver +
// FaultProjector) plays the control node: per epoch it folds the epoch's
// own request block into demand churn (the fleet learns from the stream
// it serves), applies the process-fault plan's crash/recover transitions
// as node-level fault events over the dead servers' shards (quota
// re-homes to the nearest live ancestor copy, conservation asserted
// inside the driver), and snapshots the resulting serving table.  Each
// NetdEpoch then carries exactly what the loadgen ships at the boundary:
// the full table (the loadgen diffs consecutive blobs into kQuotaDelta
// frames), the projector's down set, and the ReassignOwners-re-homed
// ownership map, plus the plan's kill/restart lists.
//
// Everything here is a pure function of (config, options): the fleet and
// the in-process oracle both replay the same plan, which is what makes
// the cross-fault counter comparison bit-exact.
#pragma once

#include <cstdint>

#include "fault/process_faults.h"
#include "netd/cluster.h"
#include "serve/epoch_driver.h"

namespace webwave {

struct EpochPlanOptions {
  int epochs = 4;
  std::uint64_t requests_per_epoch = 0;  // required > 0
  EpochDriver::Options driver;
  // Evaluated over the fleet star (see fault/process_faults.h); only
  // used when inject_faults is set.
  FaultScheduleOptions faults;
  bool inject_faults = true;
};

// Fills config->epochs (and the derived boot state: quota_blob, down,
// total_requests) from the closed loop described above.  Requires
// config->parents/owner/server_count/docs/stream_seed to be set.
// Returns the process-fault plan the epochs were built from, so callers
// can assert against the same schedule.
ProcessFaultPlan BuildEpochPlan(NetdClusterConfig* config,
                                const EpochPlanOptions& options);

}  // namespace webwave
