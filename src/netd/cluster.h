// The netd cluster harness: carve a serving subtree out of a big tree,
// partition it into per-process shards, fork one CacheServerDaemon per
// shard over loopback sockets, drive the fleet with the deterministic
// loadgen, and validate every integer serving counter against the
// in-process ServingPlane oracle replaying the identical request stream.
//
// Why the counters can match *exactly* across async processes: the fleet
// runs block_size = 1, the order-free admission regime, where every
// token grant, thinning draw and backoff slot is a pure function of
// (req_id, cell).  Arrival order across sockets then cannot change any
// decision, so the sum of the daemons' counters equals one oracle plane's
// metrics bit for bit — hits, forwards, failovers, drops, backoff slots,
// per-request hops, everything.
//
// Process hygiene: the parent creates every listen socket *before*
// forking (children inherit their own, the kernel queues connections
// until the child polls — no port races, no startup handshakes), and no
// thread exists anywhere at fork time (daemon planes run threads = 1;
// the oracle replays only after the fleet is done).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/latency_histogram.h"
#include "obs/trace.h"
#include "serve/request_gen.h"
#include "serve/serving_plane.h"
#include "tree/routing_tree.h"
#include "util/rng.h"
#include "wire/message.h"

namespace webwave {

// One epoch of a multi-epoch fleet run: a block of the request stream
// served under one quota table, down set and ownership map.  Process
// faults happen at epoch *boundaries*: the loadgen drains in-flight to
// zero, scrapes any victim's counters (and trace), then kills /
// restarts the listed daemons, ships every live daemon its
// kQuotaDelta + kEpochUpdate pair, runs a full kStatsRequest barrier
// round, and only then resumes the stream — so each block is served
// under exactly one fleet state and the bit-exact oracle comparison
// extends across faults.
struct NetdEpoch {
  std::uint64_t requests = 0;           // stream block length
  std::vector<NodeId> down;             // ascending; installed fleet-wide
  std::vector<std::uint8_t> quota_blob; // full table at this epoch
  std::vector<int> owner;               // re-homed node -> server map
  std::vector<int> kill_servers;        // SIGKILLed entering this epoch
  std::vector<int> restart_servers;     // re-forked entering this epoch
};

struct NetdClusterConfig {
  // The carved tree, as a parent array (RoutingTree::FromParents form).
  std::vector<NodeId> parents;
  // node -> owning server index, in [0, server_count).
  std::vector<int> owner;
  int server_count = 0;
  // The admission state every process is handed: QuotaWireTable bytes.
  // Each daemon AND the oracle deserialize this same blob, so they build
  // identical planes by construction.
  std::vector<std::uint8_t> quota_blob;
  // Globally known crashed nodes (never the root).
  std::vector<NodeId> down;
  // Plane options; block_size must be 1 (enforced by the daemon).
  ServingOptions serving;
  // The (seed, i) request stream: loadgen and oracle both generate it
  // with NetdRequestAt over parents.size() nodes and `docs` documents.
  int docs = 0;
  std::uint64_t stream_seed = 1;
  std::uint64_t total_requests = 0;
  // Loadgen pacing: the timer wheel refills this many injection tokens
  // per wheel tick; at most `window` requests are in flight.
  int tokens_per_tick = 2048;
  int window = 4096;
  // Daemon gossip cadence on the timer wheel (0 disables).
  int gossip_period_ms = 20;
  // Live fleet stats scraping: the loadgen polls every daemon's
  // kStatsRequest on this cadence *while the stream is in flight* and
  // records the replies as NetdStatsSamples (0 = final sample only).
  int stats_scrape_period_ms = 0;
  // Multi-epoch closed loop: when non-empty, the stream is served in
  // epoch blocks (sum of requests must equal total_requests) and epoch 0
  // must match the boot state (quota_blob, owner, down) since daemons
  // construct from it and no transition into epoch 0 is ever sent.
  std::vector<NetdEpoch> epochs;
  // Bounded backpressure: a forward that would push a peer connection's
  // outbox past this many queued bytes is shed (the origin gets a
  // kDropped reply and netd.shed_forwards counts it) instead of
  // buffering unboundedly behind a slow or dead peer.
  std::size_t outbox_watermark_bytes = std::size_t{1} << 20;
  // Non-blocking peer connect deadline before the attempt counts as
  // failed and the counter-hash backoff schedules a retry.
  int connect_timeout_ms = 2000;
  // Loadgen load-reactive window: when > 0, a GetReply whose piggybacked
  // load exceeds factor x (completed / server_count) halves the live
  // window (additive +1 recovery up to `window`).  Pacing only — the
  // stream content and every admission decision are unaffected.
  double load_window_factor = 0;
  // Latency plane (PR 10): each daemon keeps a flight-recorder ring of
  // this many events.  `flight_dir`, when non-empty, is where a daemon
  // dumps its ring on *clean* shutdown ("flight_<index>.txt"); victims
  // never reach that path — their rings are scraped over the wire
  // (kFlightRequest) at the quiesced boundary before the SIGKILL.
  std::size_t flight_capacity = 4096;
  std::string flight_dir;
};

// Request i of stream `seed` — a pure counter function, evaluated
// identically by the loadgen (to send) and the oracle (to replay).
inline Request NetdRequestAt(std::uint64_t seed, std::uint64_t i, int nodes,
                             int docs) {
  std::uint64_t s1 = seed + i * 0x9e3779b97f4a7c15ULL;
  std::uint64_t s2 = s1 + 0x6a09e667f3bcc909ULL;
  Request r;
  r.node = static_cast<NodeId>(SplitMix64(s1) %
                               static_cast<std::uint64_t>(nodes));
  r.doc = static_cast<std::int32_t>(SplitMix64(s2) %
                                    static_cast<std::uint64_t>(docs));
  return r;
}

// The subtree of `big` rooted at `r`, re-indexed to its own compact tree
// (new ids are preorder positions, so the carved root is node 0).
struct CarvedTree {
  std::vector<NodeId> parents;  // carved tree, FromParents form
  std::vector<NodeId> big_ids;  // carved id -> original id in `big`
};
CarvedTree CarveSubtree(const RoutingTree& big, NodeId r);

// node -> server: contiguous preorder blocks via WorkerPool::Partition,
// so shards are deterministic, balanced within one node, and mostly
// connected (preorder keeps subtrees together).
std::vector<int> PartitionOwners(const RoutingTree& tree, int servers);

// Re-homes ownership around dead servers: every node owned by a dead
// server is adopted by its parent's (already re-homed) owner, walking
// preorder so parents resolve first.  Preserves the up-the-tree owner
// monotonicity that terminates forward chains (new[v] <= base[v]
// everywhere).  The root's owner (server 0) must be alive.
std::vector<int> ReassignOwners(const RoutingTree& tree,
                                const std::vector<int>& base,
                                const std::vector<bool>& server_dead);

// The sparse (node, owner) pairs where `now` differs from `base`,
// ascending by node — the kEpochUpdate payload.  Stateless by design:
// a daemon applies them to a fresh copy of the base map, so a rejoining
// process that missed epochs is current after one update.
std::vector<OwnerDelta> OwnerDiff(const std::vector<int>& base,
                                  const std::vector<int>& now);

// Replays the config's stream on one all-owning plane built from the
// same quota blob — the oracle the fleet is compared against.  When
// `trace` is non-null and config.serving.trace is set, the oracle's
// sampled TraceEvent stream is copied out (already canonical order) —
// the record-for-record reference for the fleet's scraped traces.
// With config.epochs set, each epoch's block is replayed under that
// epoch's table + down set (Refresh between blocks), and
// `epoch_counters` (if non-null) receives the cumulative counter set
// after each epoch — the reference for the fleet's quiesced barrier
// samples.  Runs config.serving.threads workers (order-free admission
// makes the counters thread-count invariant).
ServingMetrics ReplayOracle(const NetdClusterConfig& config,
                            std::vector<TraceEvent>* trace = nullptr,
                            std::vector<WireCounters>* epoch_counters =
                                nullptr);

// The scalar counters of a ServingMetrics, in WireCounters form (the
// transport-level fields net_forwards/gossip_sent stay 0 — the oracle
// has no sockets).
WireCounters CountersFromMetrics(const ServingMetrics& m);

// True iff the serving counters agree (transport-level fields ignored).
bool ServingCountersEqual(const WireCounters& a, const WireCounters& b);

// Element-wise sum of a counter set (every field, transport ones too).
WireCounters SumCounters(const std::vector<WireCounters>& all);

// True iff every field of `a` is <= the matching field of `b` — the
// monotonicity law successive live scrapes of one daemon must obey.
bool CountersMonotone(const WireCounters& a, const WireCounters& b);

// One live scrape of the whole fleet: each daemon's kStatsReply
// counters, stamped with how many requests the client had completed
// when the scrape round was issued.
struct NetdStatsSample {
  std::uint64_t at_completed = 0;
  std::vector<WireCounters> per_server;
  // Each daemon's request service-time histogram from the same v4
  // kStatsReply (empty histograms for daemons that shipped none, and for
  // dead slots in barrier samples).  Timing payload — never part of the
  // oracle identity assertions.
  std::vector<LatencyHistogram> hist_per_server;
};

struct NetdRunResult {
  bool ok = false;  // fleet launched, drained and exited cleanly
  std::vector<WireCounters> per_server;
  WireCounters fleet;  // per_server summed
  // Client-side tallies from the replies themselves.
  std::uint64_t client_served = 0;
  std::uint64_t client_dropped = 0;
  std::uint64_t client_hop_sum = 0;  // over served replies
  // Every stats scrape, mid-run ones first (stats_scrape_period_ms > 0),
  // always ending with the final post-drain scrape — so samples.back()
  // is the fleet's end-of-run counter set.
  std::vector<NetdStatsSample> samples;
  // The fleet's sampled trace records (config.serving.trace), merged
  // across daemons and canonicalized to (req_id, seq) order.
  std::vector<TraceEvent> trace;
  // Final counters of daemons killed mid-run, scraped at the quiesced
  // boundary just before each SIGKILL.  `fleet` includes them, so the
  // sum law holds across faults: fleet = live finals + retired.
  std::vector<WireCounters> retired;
  // One quiesced barrier sample per epoch *transition* (epochs 1..E-1):
  // every live daemon's counters after its delta + epoch update landed.
  // Dead slots stay zero — their final counters are in `retired` — so
  // SumCounters(sample) + retired-so-far equals the oracle's cumulative
  // counters after the preceding epoch.
  std::vector<NetdStatsSample> epoch_samples;
  // The epoch each restarted daemon announced in its rejoin Hello —
  // always 0 (a fresh boot serves the base table until its delta lands).
  std::vector<std::uint32_t> rejoin_hello_epochs;

  // --- Latency plane (PR 10) — observability payload, never identity ---
  // Loadgen-observed send->reply latency, bucketed per epoch block and
  // per replying server.
  std::vector<LatencyHistogram> latency_per_epoch;
  std::vector<LatencyHistogram> latency_per_server;
  // Each live daemon's final request service-time histogram (from the
  // final stats round's v4 section), and the victims' pre-kill ones
  // (aligned index-for-index with `retired`).
  std::vector<LatencyHistogram> server_hist;
  std::vector<LatencyHistogram> retired_hist;
  // Flight-recorder rings: victims' rings scraped at the quiesced
  // boundary before each SIGKILL, then every live daemon's ring at end
  // of run.  Events carry the recording daemon's index in `node`.
  struct FlightDump {
    int server = -1;
    bool victim = false;  // scraped ahead of a SIGKILL
    std::vector<FlightEvent> events;
  };
  std::vector<FlightDump> flights;
  // The loadgen's own event-loop stall tracking.
  LatencyHistogram loop_poll_iter;
  LatencyHistogram loop_timer_lag;
  std::uint64_t loop_max_stall_ns = 0;
};

// Forks config.server_count daemons, runs the loadgen against them,
// collects every daemon's counters, shuts the fleet down and reaps it.
NetdRunResult RunNetdCluster(const NetdClusterConfig& config);

}  // namespace webwave
