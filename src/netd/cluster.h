// The netd cluster harness: carve a serving subtree out of a big tree,
// partition it into per-process shards, fork one CacheServerDaemon per
// shard over loopback sockets, drive the fleet with the deterministic
// loadgen, and validate every integer serving counter against the
// in-process ServingPlane oracle replaying the identical request stream.
//
// Why the counters can match *exactly* across async processes: the fleet
// runs block_size = 1, the order-free admission regime, where every
// token grant, thinning draw and backoff slot is a pure function of
// (req_id, cell).  Arrival order across sockets then cannot change any
// decision, so the sum of the daemons' counters equals one oracle plane's
// metrics bit for bit — hits, forwards, failovers, drops, backoff slots,
// per-request hops, everything.
//
// Process hygiene: the parent creates every listen socket *before*
// forking (children inherit their own, the kernel queues connections
// until the child polls — no port races, no startup handshakes), and no
// thread exists anywhere at fork time (daemon planes run threads = 1;
// the oracle replays only after the fleet is done).
#pragma once

#include <cstdint>
#include <vector>

#include "obs/trace.h"
#include "serve/request_gen.h"
#include "serve/serving_plane.h"
#include "tree/routing_tree.h"
#include "util/rng.h"
#include "wire/message.h"

namespace webwave {

struct NetdClusterConfig {
  // The carved tree, as a parent array (RoutingTree::FromParents form).
  std::vector<NodeId> parents;
  // node -> owning server index, in [0, server_count).
  std::vector<int> owner;
  int server_count = 0;
  // The admission state every process is handed: QuotaWireTable bytes.
  // Each daemon AND the oracle deserialize this same blob, so they build
  // identical planes by construction.
  std::vector<std::uint8_t> quota_blob;
  // Globally known crashed nodes (never the root).
  std::vector<NodeId> down;
  // Plane options; block_size must be 1 (enforced by the daemon).
  ServingOptions serving;
  // The (seed, i) request stream: loadgen and oracle both generate it
  // with NetdRequestAt over parents.size() nodes and `docs` documents.
  int docs = 0;
  std::uint64_t stream_seed = 1;
  std::uint64_t total_requests = 0;
  // Loadgen pacing: the timer wheel refills this many injection tokens
  // per wheel tick; at most `window` requests are in flight.
  int tokens_per_tick = 2048;
  int window = 4096;
  // Daemon gossip cadence on the timer wheel (0 disables).
  int gossip_period_ms = 20;
  // Live fleet stats scraping: the loadgen polls every daemon's
  // kStatsRequest on this cadence *while the stream is in flight* and
  // records the replies as NetdStatsSamples (0 = final sample only).
  int stats_scrape_period_ms = 0;
};

// Request i of stream `seed` — a pure counter function, evaluated
// identically by the loadgen (to send) and the oracle (to replay).
inline Request NetdRequestAt(std::uint64_t seed, std::uint64_t i, int nodes,
                             int docs) {
  std::uint64_t s1 = seed + i * 0x9e3779b97f4a7c15ULL;
  std::uint64_t s2 = s1 + 0x6a09e667f3bcc909ULL;
  Request r;
  r.node = static_cast<NodeId>(SplitMix64(s1) %
                               static_cast<std::uint64_t>(nodes));
  r.doc = static_cast<std::int32_t>(SplitMix64(s2) %
                                    static_cast<std::uint64_t>(docs));
  return r;
}

// The subtree of `big` rooted at `r`, re-indexed to its own compact tree
// (new ids are preorder positions, so the carved root is node 0).
struct CarvedTree {
  std::vector<NodeId> parents;  // carved tree, FromParents form
  std::vector<NodeId> big_ids;  // carved id -> original id in `big`
};
CarvedTree CarveSubtree(const RoutingTree& big, NodeId r);

// node -> server: contiguous preorder blocks via WorkerPool::Partition,
// so shards are deterministic, balanced within one node, and mostly
// connected (preorder keeps subtrees together).
std::vector<int> PartitionOwners(const RoutingTree& tree, int servers);

// Replays the config's stream on one all-owning plane built from the
// same quota blob — the oracle the fleet is compared against.  When
// `trace` is non-null and config.serving.trace is set, the oracle's
// sampled TraceEvent stream is copied out (already canonical order) —
// the record-for-record reference for the fleet's scraped traces.
ServingMetrics ReplayOracle(const NetdClusterConfig& config,
                            std::vector<TraceEvent>* trace = nullptr);

// The scalar counters of a ServingMetrics, in WireCounters form (the
// transport-level fields net_forwards/gossip_sent stay 0 — the oracle
// has no sockets).
WireCounters CountersFromMetrics(const ServingMetrics& m);

// True iff the serving counters agree (transport-level fields ignored).
bool ServingCountersEqual(const WireCounters& a, const WireCounters& b);

// Element-wise sum of a counter set (every field, transport ones too).
WireCounters SumCounters(const std::vector<WireCounters>& all);

// True iff every field of `a` is <= the matching field of `b` — the
// monotonicity law successive live scrapes of one daemon must obey.
bool CountersMonotone(const WireCounters& a, const WireCounters& b);

// One live scrape of the whole fleet: each daemon's kStatsReply
// counters, stamped with how many requests the client had completed
// when the scrape round was issued.
struct NetdStatsSample {
  std::uint64_t at_completed = 0;
  std::vector<WireCounters> per_server;
};

struct NetdRunResult {
  bool ok = false;  // fleet launched, drained and exited cleanly
  std::vector<WireCounters> per_server;
  WireCounters fleet;  // per_server summed
  // Client-side tallies from the replies themselves.
  std::uint64_t client_served = 0;
  std::uint64_t client_dropped = 0;
  std::uint64_t client_hop_sum = 0;  // over served replies
  // Every stats scrape, mid-run ones first (stats_scrape_period_ms > 0),
  // always ending with the final post-drain scrape — so samples.back()
  // is the fleet's end-of-run counter set.
  std::vector<NetdStatsSample> samples;
  // The fleet's sampled trace records (config.serving.trace), merged
  // across daemons and canonicalized to (req_id, seq) order.
  std::vector<TraceEvent> trace;
};

// Forks config.server_count daemons, runs the loadgen against them,
// collects every daemon's counters, shuts the fleet down and reaps it.
NetdRunResult RunNetdCluster(const NetdClusterConfig& config);

}  // namespace webwave
