// EventLoop — the portable poll(2) dispatcher under every netd process.
//
// One thread, non-blocking sockets, two primitives:
//
//   * fd readiness: WatchRead registers a callback fired whenever the fd
//     is readable (or hung up); SetWriteInterest toggles POLLOUT for fds
//     with queued output, so an idle connection costs nothing.
//   * a hashed timer wheel: kWheelSlots slots of kTickMs each, one-shot
//     timers hashed into (now + delay) % slots with a rounds counter for
//     delays past one revolution.  O(1) insert/cancel, O(due) per tick —
//     the classic Varghese–Lauck structure.  The daemons run their gossip
//     cadence on it; the loadgen refreshes its injection token bucket
//     from it.
//
// The loop is deliberately poll-based, not epoll: the netd fleet is a
// handful of sockets per process, portability beats scalability, and the
// dispatch semantics are identical.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "obs/clock.h"
#include "obs/latency_histogram.h"

namespace webwave {

class EventLoop {
 public:
  using IoCallback = std::function<void()>;
  using TimerCallback = std::function<void()>;

  // The loop's latency plane: a null clock means no timing is recorded —
  // every instrumented site is gated on one pointer test, so an
  // unattached loop pays nothing and never falls back to a real clock.
  struct LatencySink {
    MonotonicClock* clock = nullptr;
    LatencyHistogram* poll_iter = nullptr;   // dispatch duration per round
    LatencyHistogram* timer_lag = nullptr;   // fire lag behind the deadline
    std::uint64_t* max_stall_ns = nullptr;   // high-water dispatch duration
  };
  void AttachLatencyPlane(const LatencySink& sink) { sink_ = sink; }

  EventLoop();

  // Registers `on_readable` for fd (replacing any previous registration).
  // The callback must drain the fd; it is invoked again on the next poll
  // round while data remains.
  void WatchRead(int fd, IoCallback on_readable);
  // Fires `on_writable` whenever fd accepts more output; cleared by
  // SetWriteInterest(fd, false) once the send buffer drains.
  void SetWriteInterest(int fd, bool on, IoCallback on_writable = nullptr);
  // Drops all interest in fd (does not close it).
  void Unwatch(int fd);

  // One-shot timer after delay_ms; returns an id usable with CancelTimer.
  std::uint64_t AddTimer(int delay_ms, TimerCallback cb);
  void CancelTimer(std::uint64_t id);

  // Milliseconds until the nearest pending timer is due (0 if overdue),
  // or -1 when no timers are pending.  O(kWheelSlots + timers) — Run()
  // calls it once per poll round to sleep exactly until the next
  // deadline instead of ticking blindly, so sparse timers (reconnect
  // backoff under light traffic) fire on schedule without busy-polling.
  int NextTimerDelayMs() const;

  // Dispatches until Stop() is called.  Returns the Stop code.
  int Run();
  void Stop(int code = 0);

  // Monotonic milliseconds (the wheel's clock), for tests and pacing.
  static std::int64_t NowMs();

 private:
  static constexpr int kTickMs = 4;
  static constexpr std::size_t kWheelSlots = 256;
  // Upper bound on one poll sleep: a watched fd can become readable any
  // time, but poll wakes on readiness anyway — this only bounds how
  // stale the wheel clock may get before an AdvanceWheel catch-up.
  static constexpr int kIdleTimeoutMs = 100;

  struct Watch {
    IoCallback on_readable;
    IoCallback on_writable;
    bool want_write = false;
  };
  struct Timer {
    std::uint64_t id = 0;
    std::uint32_t rounds = 0;  // whole wheel revolutions still to wait
    TimerCallback cb;
  };

  void AdvanceWheel();
  void RecordIteration(std::uint64_t iter_start);

  std::unordered_map<int, Watch> watches_;
  std::vector<std::vector<Timer>> wheel_;
  std::size_t wheel_pos_ = 0;
  std::int64_t wheel_time_ms_ = 0;  // wheel's notion of now
  std::uint64_t next_timer_id_ = 1;
  std::size_t active_timers_ = 0;
  bool running_ = false;
  int stop_code_ = 0;
  LatencySink sink_;
};

}  // namespace webwave
